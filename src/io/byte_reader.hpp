// Positioned byte reads over one file, with an mmap fast path and a
// deterministic degrade story.
//
// Every on-disk consumer in src/io (the .rrsb reader, the Matrix Market
// chunk reader, spill-run read-back) funnels its reads through this
// class so they all share the same failure semantics: each read carries
// the io.read fail point; an injected failure on the mmap path degrades
// the reader permanently to buffered pread and retries, a failure on the
// buffered path retries once more, and a third consecutive failure
// propagates as io_error. Real short reads and syscall errors are never
// retried — only injected faults are, because those model transient
// device hiccups the caller asked the chaos framework to simulate.
//
// Thread safety: read_at is const and safe to call concurrently — the
// mmap view is immutable, pread carries its own offset, and the degrade
// flag is a single atomic.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rrspmm::io {

class ByteReader {
 public:
  /// Opens `path` read-only and maps it when possible; a failed mmap
  /// (or an empty file) starts in buffered mode. Throws io_error when
  /// the file cannot be opened or stat'ed.
  explicit ByteReader(const std::string& path);
  ~ByteReader();

  ByteReader(const ByteReader&) = delete;
  ByteReader& operator=(const ByteReader&) = delete;

  std::uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// True once reads go through pread instead of the mapping (initial
  /// mmap failure, or an io.read fault degraded the fast path).
  bool buffered() const { return buffered_.load(std::memory_order_relaxed); }

  /// Copies bytes [off, off + n) into dst. Throws io_error when the
  /// range exceeds the file or a read failure persists (see above).
  void read_at(std::uint64_t off, void* dst, std::size_t n) const;

 private:
  void read_raw(std::uint64_t off, void* dst, std::size_t n) const;

  std::string path_;
  int fd_ = -1;
  const std::byte* map_ = nullptr;
  std::uint64_t size_ = 0;
  mutable std::atomic<bool> buffered_{false};
};

}  // namespace rrspmm::io
