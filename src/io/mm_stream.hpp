// Chunked Matrix Market reader — the acquisition half of the
// out-of-core ingestion path.
//
// Parses the same dialect as sparse/io_mm (`matrix coordinate
// (real|integer|pattern) (general|symmetric)`, via the shared banner
// parser) but never holds more than a bounded window of the file:
// next_chunk() emits batches of COO entries in file order, with
// symmetric expansion applied inline (each off-diagonal entry is
// immediately followed by its mirror — the exact arrival order the
// resident reader produces, so feeding the chunks to
// StreamingCsrBuilder yields a bit-identical CSR at any chunk size).
//
// Reads go through ByteReader: mmap fast path, io.read fault probe,
// degrade to buffered pread. Numbers are parsed with std::from_chars,
// which rounds identically to the istream extraction the resident
// reader uses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "io/byte_reader.hpp"
#include "io/streaming_builder.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/io_mm.hpp"

namespace rrspmm::io {

struct MmStreamHeader {
  index_t rows = 0;
  index_t cols = 0;
  std::int64_t declared_entries = 0;  ///< size-line count, pre-expansion
  bool pattern = false;
  bool symmetric = false;
};

class MmChunkReader {
 public:
  /// Opens and parses the banner, comments and size line (with the same
  /// hardening as the resident reader: typed io_error for malformed or
  /// truncated headers, negative or overflowing sizes). `chunk_bytes`
  /// bounds how much of the entry section one next_chunk call consumes;
  /// it is clamped up so a chunk always holds at least one entry.
  explicit MmChunkReader(const std::string& path, std::size_t chunk_bytes = 1u << 20);

  const MmStreamHeader& header() const { return hdr_; }

  /// Clears `out` and fills it with the next batch of entries
  /// (0-based, symmetric-expanded, file order). Returns false — with
  /// `out` empty — once every declared entry has been emitted. Throws
  /// io_error on a truncated or malformed entry list, or indices
  /// outside the declared dimensions (reported with their 1-based
  /// entry ordinal).
  bool next_chunk(std::vector<sparse::CooEntry>& out);

  /// Entries emitted so far, post-expansion.
  std::int64_t entries_emitted() const { return emitted_; }
  /// True once reads degraded from mmap to buffered.
  bool buffered() const { return bytes_.buffered(); }

 private:
  bool refill();  ///< slides the window; false when the file is drained
  void skip_ws();
  std::int64_t parse_int(const char* what);
  double parse_value();

  ByteReader bytes_;
  MmStreamHeader hdr_;
  std::size_t chunk_bytes_;
  std::vector<char> window_;
  std::size_t wpos_ = 0;   ///< cursor into window_
  std::size_t wlen_ = 0;   ///< valid bytes in window_
  std::uint64_t fpos_ = 0; ///< file offset of window_[wlen_]
  std::int64_t parsed_ = 0;   ///< entries parsed, pre-expansion
  std::int64_t emitted_ = 0;  ///< entries emitted, post-expansion
};

/// End-to-end streaming ingest: chunked parse into a budgeted builder,
/// returning the resident CSR. Bit-identical to
/// sparse::read_matrix_market for any chunk size and budget.
sparse::CsrMatrix read_matrix_market_streamed(const std::string& path,
                                              const StreamingBuildConfig& cfg = {},
                                              std::size_t chunk_bytes = 1u << 20);

/// Out-of-core ingest: .mtx to .rrsb without ever holding the matrix
/// resident (peak memory is the builder budget plus one output block).
void ingest_to_rrsb(const std::string& mm_path, const std::string& rrsb_path,
                    const StreamingBuildConfig& cfg = {},
                    index_t block_rows = kDefaultBlockRows, std::size_t chunk_bytes = 1u << 20);

}  // namespace rrspmm::io
