// Out-of-core row-reordering preprocessing: the paper's LSH + Alg 3
// pipeline fed block-at-a-time from a .rrsb shard file, producing a
// ReorderResult bitwise identical to core::reorder_rows on the resident
// matrix.
//
// Decomposition by what each stage actually needs:
//   * signatures — per-row independent, so each block slice feeds
//     lsh::compute_signatures_into at its row offset; only the
//     signature matrix (rows x siglen u32) stays resident.
//   * banding — needs the signatures plus a per-row liveness mask,
//     which the signature pass collects; the matrix is not touched
//     (lsh::band_pair_keys mask overload).
//   * exact scoring and Alg 3 re-keying — pairwise row access, served
//     by RrsbRowSource's two-block cache over the shard file.
// At no point is the whole matrix resident.
//
// Parallelism degrades exactly like the resident engine: a failure in
// the pooled phases (injected fault, worker death) rethrows into the
// caller, which recomputes sequentially — bit-identical — and sets
// degraded_to_sequential.
#pragma once

#include "core/reorder_engine.hpp"
#include "io/rrsb.hpp"

namespace rrspmm::runtime {
class WorkerPool;
}

namespace rrspmm::io {

/// Streaming counterpart of core::reorder_rows(m, cfg): resolves
/// cfg.threads (0 = RRSPMM_THREADS) and runs on an internal pool when
/// it is > 1.
core::ReorderResult streaming_reorder_rows(const RrsbReader& shard,
                                           const core::ReorderConfig& cfg);

/// Caller-owned pool variant (nullptr = sequential); cfg.threads is
/// ignored.
core::ReorderResult streaming_reorder_rows(const RrsbReader& shard, const core::ReorderConfig& cfg,
                                           runtime::WorkerPool* pool);

}  // namespace rrspmm::io
