#include "io/rrsb.hpp"

#include <cstdio>
#include <cstring>

namespace rrspmm::io {

using sparse::invalid_matrix;
using sparse::io_error;

namespace {

constexpr std::uint32_t kEndianCheck = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kIndexEntryBytes = 24;

std::uint64_t fnv1a(const void* data, std::size_t n, std::uint64_t h = 1469598103934665603ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

// Field-by-field (de)serialisation into a flat byte buffer: the on-disk
// layout must not depend on host struct padding.
template <typename T>
void put(unsigned char* buf, std::size_t off, T v) {
  std::memcpy(buf + off, &v, sizeof(T));
}

template <typename T>
T get(const unsigned char* buf, std::size_t off) {
  T v;
  std::memcpy(&v, buf + off, sizeof(T));
  return v;
}

void fwrite_all(std::FILE* f, const void* data, std::size_t n, const std::string& path) {
  if (n == 0) return;
  if (std::fwrite(data, 1, n, f) != n) throw io_error("write failed on " + path);
}

}  // namespace

// ---------------------------------------------------------------------------
// Writer

RrsbWriter::RrsbWriter(const std::string& path, index_t rows, index_t cols, index_t block_rows)
    : path_(path), rows_(rows), cols_(cols), block_rows_(block_rows) {
  if (rows < 0 || cols < 0) throw invalid_matrix("negative .rrsb dimensions");
  if (block_rows <= 0) throw invalid_matrix(".rrsb block_rows must be positive");
  f_ = std::fopen(path.c_str(), "wb");
  if (f_ == nullptr) throw io_error("cannot open " + path + " for writing");
  const unsigned char zeros[kHeaderBytes] = {};
  fwrite_all(f_, zeros, kHeaderBytes, path_);
}

RrsbWriter::~RrsbWriter() {
  if (f_ != nullptr) std::fclose(f_);
  if (!finished_) std::remove(path_.c_str());
}

void RrsbWriter::append_block(std::span<const offset_t> local_rowptr,
                              std::span<const index_t> colidx,
                              std::span<const value_t> values) {
  if (finished_) throw invalid_matrix(".rrsb writer already finished");
  if (local_rowptr.empty() || local_rowptr.front() != 0) {
    throw invalid_matrix(".rrsb block rowptr must start at 0");
  }
  const auto nrows = static_cast<index_t>(local_rowptr.size() - 1);
  const index_t expected = std::min<index_t>(block_rows_, rows_ - rows_written_);
  if (nrows != expected || expected == 0) {
    throw invalid_matrix(".rrsb block has " + std::to_string(nrows) + " rows, expected " +
                         std::to_string(expected));
  }
  const offset_t block_nnz = local_rowptr.back();
  if (static_cast<offset_t>(colidx.size()) != block_nnz ||
      static_cast<offset_t>(values.size()) != block_nnz) {
    throw invalid_matrix(".rrsb block array sizes disagree with rowptr");
  }

  IndexEntry e;
  e.offset = static_cast<std::uint64_t>(std::ftell(f_));
  e.nnz_before = nnz_;
  fwrite_all(f_, local_rowptr.data(), local_rowptr.size() * sizeof(offset_t), path_);
  fwrite_all(f_, colidx.data(), colidx.size() * sizeof(index_t), path_);
  fwrite_all(f_, values.data(), values.size() * sizeof(value_t), path_);
  std::uint64_t h = fnv1a(local_rowptr.data(), local_rowptr.size() * sizeof(offset_t));
  h = fnv1a(colidx.data(), colidx.size() * sizeof(index_t), h);
  h = fnv1a(values.data(), values.size() * sizeof(value_t), h);
  e.fnv = h;
  index_.push_back(e);
  rows_written_ += nrows;
  nnz_ += block_nnz;
}

void RrsbWriter::finish() {
  if (finished_) return;
  if (rows_written_ != rows_) {
    throw invalid_matrix(".rrsb writer finished with " + std::to_string(rows_written_) + " of " +
                         std::to_string(rows_) + " rows");
  }
  const auto index_offset = static_cast<std::uint64_t>(std::ftell(f_));
  std::vector<unsigned char> ibuf(index_.size() * kIndexEntryBytes);
  for (std::size_t b = 0; b < index_.size(); ++b) {
    put<std::uint64_t>(ibuf.data() + b * kIndexEntryBytes, 0, index_[b].offset);
    put<offset_t>(ibuf.data() + b * kIndexEntryBytes, 8, index_[b].nnz_before);
    put<std::uint64_t>(ibuf.data() + b * kIndexEntryBytes, 16, index_[b].fnv);
  }
  fwrite_all(f_, ibuf.data(), ibuf.size(), path_);

  unsigned char hdr[kHeaderBytes] = {};
  std::memcpy(hdr, "RRSB", 4);
  put<std::uint32_t>(hdr, 4, kRrsbVersion);
  put<std::uint32_t>(hdr, 8, kEndianCheck);
  put<std::uint32_t>(hdr, 12, static_cast<std::uint32_t>(block_rows_));
  put<std::int64_t>(hdr, 16, rows_);
  put<std::int64_t>(hdr, 24, cols_);
  put<std::int64_t>(hdr, 32, nnz_);
  put<std::uint64_t>(hdr, 40, index_offset);
  put<std::uint64_t>(hdr, 48, fnv1a(ibuf.data(), ibuf.size()));
  if (std::fseek(f_, 0, SEEK_SET) != 0) throw io_error("seek failed on " + path_);
  fwrite_all(f_, hdr, kHeaderBytes, path_);
  if (std::fflush(f_) != 0) throw io_error("flush failed on " + path_);
  std::fclose(f_);
  f_ = nullptr;
  finished_ = true;
}

void write_rrsb(const sparse::CsrMatrix& m, const std::string& path, index_t block_rows) {
  RrsbWriter w(path, m.rows(), m.cols(), block_rows);
  std::vector<offset_t> local;
  for (index_t lo = 0; lo < m.rows(); lo += block_rows) {
    const index_t hi = std::min<index_t>(lo + block_rows, m.rows());
    const offset_t base = m.rowptr()[static_cast<std::size_t>(lo)];
    const offset_t end = m.rowptr()[static_cast<std::size_t>(hi)];
    local.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
    for (index_t r = lo; r <= hi; ++r) {
      local[static_cast<std::size_t>(r - lo)] = m.rowptr()[static_cast<std::size_t>(r)] - base;
    }
    w.append_block(local,
                   {m.colidx().data() + base, static_cast<std::size_t>(end - base)},
                   {m.values().data() + base, static_cast<std::size_t>(end - base)});
  }
  w.finish();
}

// ---------------------------------------------------------------------------
// Reader

RrsbReader::RrsbReader(const std::string& path) : bytes_(std::make_unique<ByteReader>(path)) {
  if (bytes_->size() < kHeaderBytes) throw io_error("truncated .rrsb header in " + path);
  unsigned char hdr[kHeaderBytes];
  bytes_->read_at(0, hdr, kHeaderBytes);
  if (std::memcmp(hdr, "RRSB", 4) != 0) throw io_error(path + " is not a .rrsb file");
  const auto version = get<std::uint32_t>(hdr, 4);
  if (version != kRrsbVersion) {
    throw io_error(path + ": unsupported .rrsb version " + std::to_string(version));
  }
  if (get<std::uint32_t>(hdr, 8) != kEndianCheck) {
    throw io_error(path + ": endianness mismatch (file written on a different byte order)");
  }
  block_rows_ = checked_index(get<std::uint32_t>(hdr, 12));
  rows_ = checked_index(get<std::int64_t>(hdr, 16));
  cols_ = checked_index(get<std::int64_t>(hdr, 24));
  nnz_ = get<std::int64_t>(hdr, 32);
  if (block_rows_ <= 0 || nnz_ < 0) throw io_error(path + ": malformed .rrsb header");
  const auto index_offset = get<std::uint64_t>(hdr, 40);
  const auto index_fnv = get<std::uint64_t>(hdr, 48);

  const index_t nblocks =
      rows_ == 0 ? 0 : (rows_ + block_rows_ - 1) / block_rows_;
  const std::uint64_t index_bytes = static_cast<std::uint64_t>(nblocks) * kIndexEntryBytes;
  if (index_offset > bytes_->size() || index_offset + index_bytes > bytes_->size()) {
    throw io_error(path + ": truncated .rrsb index");
  }
  std::vector<unsigned char> ibuf(index_bytes);
  bytes_->read_at(index_offset, ibuf.data(), ibuf.size());
  if (fnv1a(ibuf.data(), ibuf.size()) != index_fnv) {
    throw io_error(path + ": .rrsb index checksum mismatch");
  }
  index_.resize(static_cast<std::size_t>(nblocks));
  for (index_t b = 0; b < nblocks; ++b) {
    auto& e = index_[static_cast<std::size_t>(b)];
    e.offset = get<std::uint64_t>(ibuf.data() + b * kIndexEntryBytes, 0);
    e.nnz_before = get<offset_t>(ibuf.data() + b * kIndexEntryBytes, 8);
    e.fnv = get<std::uint64_t>(ibuf.data() + b * kIndexEntryBytes, 16);
    if (e.offset < kHeaderBytes || e.offset > bytes_->size() || e.nnz_before < 0 ||
        e.nnz_before > nnz_ || (b > 0 && e.nnz_before < index_[static_cast<std::size_t>(b - 1)].nnz_before)) {
      throw io_error(path + ": malformed .rrsb index entry " + std::to_string(b));
    }
  }
}

offset_t RrsbReader::nnz_before(index_t b) const {
  return index_[static_cast<std::size_t>(b)].nnz_before;
}

offset_t RrsbReader::block_nnz(index_t b) const {
  const offset_t hi = b + 1 < num_blocks() ? index_[static_cast<std::size_t>(b) + 1].nnz_before : nnz_;
  return hi - index_[static_cast<std::size_t>(b)].nnz_before;
}

void RrsbReader::load_block(index_t b, std::vector<offset_t>& rowptr,
                            std::vector<index_t>& colidx, std::vector<value_t>& values) const {
  const auto& e = index_[static_cast<std::size_t>(b)];
  const index_t nrows = block_end(b) - block_begin(b);
  const offset_t bnnz = block_nnz(b);
  const std::size_t rowptr_bytes = (static_cast<std::size_t>(nrows) + 1) * sizeof(offset_t);
  const std::size_t col_bytes = static_cast<std::size_t>(bnnz) * sizeof(index_t);
  const std::size_t val_bytes = static_cast<std::size_t>(bnnz) * sizeof(value_t);
  std::vector<unsigned char> buf(rowptr_bytes + col_bytes + val_bytes);
  bytes_->read_at(e.offset, buf.data(), buf.size());
  if (fnv1a(buf.data(), buf.size()) != e.fnv) {
    throw io_error(bytes_->path() + ": .rrsb block " + std::to_string(b) + " checksum mismatch");
  }
  rowptr.resize(static_cast<std::size_t>(nrows) + 1);
  colidx.resize(static_cast<std::size_t>(bnnz));
  values.resize(static_cast<std::size_t>(bnnz));
  std::memcpy(rowptr.data(), buf.data(), rowptr_bytes);
  std::memcpy(colidx.data(), buf.data() + rowptr_bytes, col_bytes);
  std::memcpy(values.data(), buf.data() + rowptr_bytes + col_bytes, val_bytes);
  if (rowptr.front() != 0 || rowptr.back() != bnnz) {
    throw io_error(bytes_->path() + ": .rrsb block " + std::to_string(b) +
                   " rowptr disagrees with index");
  }
}

sparse::CsrMatrix RrsbReader::read_range(index_t row_begin, index_t row_end) const {
  if (row_begin < 0 || row_end < row_begin || row_end > rows_) {
    throw invalid_matrix(".rrsb read_range [" + std::to_string(row_begin) + ", " +
                         std::to_string(row_end) + ") out of bounds for " +
                         std::to_string(rows_) + " rows");
  }
  const index_t nrows = row_end - row_begin;
  std::vector<offset_t> rowptr(static_cast<std::size_t>(nrows) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> values;
  if (nrows == 0) {
    return sparse::CsrMatrix(0, cols_, std::move(rowptr), std::move(colidx), std::move(values));
  }

  std::vector<offset_t> brp;
  std::vector<index_t> bci;
  std::vector<value_t> bva;
  index_t out_row = 0;
  for (index_t b = row_begin / block_rows_; b < num_blocks() && block_begin(b) < row_end; ++b) {
    load_block(b, brp, bci, bva);
    const index_t lo = std::max(row_begin, block_begin(b)) - block_begin(b);
    const index_t hi = std::min(row_end, block_end(b)) - block_begin(b);
    const offset_t first = brp[static_cast<std::size_t>(lo)];
    const offset_t last = brp[static_cast<std::size_t>(hi)];
    colidx.insert(colidx.end(), bci.begin() + first, bci.begin() + last);
    values.insert(values.end(), bva.begin() + first, bva.begin() + last);
    for (index_t r = lo; r < hi; ++r) {
      rowptr[static_cast<std::size_t>(out_row) + 1] =
          rowptr[static_cast<std::size_t>(out_row)] +
          (brp[static_cast<std::size_t>(r) + 1] - brp[static_cast<std::size_t>(r)]);
      ++out_row;
    }
  }
  return sparse::CsrMatrix(nrows, cols_, std::move(rowptr), std::move(colidx), std::move(values));
}

// ---------------------------------------------------------------------------
// RowSource

std::span<const index_t> RrsbRowSource::row_cols(index_t i) {
  const index_t b = i / shard_.block_rows();
  Slot* slot = nullptr;
  for (Slot& s : slots_) {
    if (s.block == b) slot = &s;
  }
  if (slot == nullptr) {
    // Evict the less recently touched slot: the other slot is the block
    // of the previous row_cols call, whose span must stay valid.
    slot = slots_[0].touch <= slots_[1].touch ? &slots_[0] : &slots_[1];
    slot->m = shard_.read_range(shard_.block_begin(b), shard_.block_end(b));
    slot->block = b;
    ++loads_;
  }
  slot->touch = ++clock_;
  return slot->m.row_cols(i - shard_.block_begin(b));
}

}  // namespace rrspmm::io
