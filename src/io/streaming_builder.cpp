#include "io/streaming_builder.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <type_traits>

#include "fault/fault.hpp"
#include "io/byte_reader.hpp"

namespace rrspmm::io {

using sparse::CooEntry;
using sparse::invalid_matrix;
using sparse::io_error;

namespace {

// Spill records are raw CooEntry bytes; the layout must be padding-free
// for the file format to be well-defined.
static_assert(sizeof(CooEntry) == 12 && std::is_trivially_copyable_v<CooEntry>);

bool by_row_col(const CooEntry& a, const CooEntry& b) {
  if (a.row != b.row) return a.row < b.row;
  return a.col < b.col;
}

/// Sequential cursor over one run, disk-backed (batched ByteReader
/// reads) or in-memory.
struct RunCursor {
  std::vector<CooEntry> mem;
  std::unique_ptr<ByteReader> file;
  offset_t count = 0;
  offset_t next = 0;           ///< next record index in the run
  std::vector<CooEntry> buf;   ///< disk read-ahead window
  offset_t buf_base = 0;       ///< run index of buf[0]
  CooEntry cur{};
  bool valid = false;

  static constexpr offset_t kBatch = 4096;  // 48 KiB read-ahead per run

  void advance() {
    if (next >= count) {
      valid = false;
      return;
    }
    if (file != nullptr) {
      if (next >= buf_base + static_cast<offset_t>(buf.size()) || next < buf_base) {
        const offset_t n = std::min<offset_t>(kBatch, count - next);
        buf.resize(static_cast<std::size_t>(n));
        file->read_at(static_cast<std::uint64_t>(next) * sizeof(CooEntry), buf.data(),
                      static_cast<std::size_t>(n) * sizeof(CooEntry));
        buf_base = next;
      }
      cur = buf[static_cast<std::size_t>(next - buf_base)];
    } else {
      cur = mem[static_cast<std::size_t>(next)];
    }
    ++next;
    valid = true;
  }
};

}  // namespace

StreamingCsrBuilder::StreamingCsrBuilder(index_t rows, index_t cols, StreamingBuildConfig cfg)
    : rows_(rows), cols_(cols), cfg_(std::move(cfg)) {
  if (rows < 0 || cols < 0) throw invalid_matrix("negative builder dimensions");
  budget_entries_ = std::max<std::size_t>(1024, cfg_.budget_bytes / sizeof(CooEntry));
}

StreamingCsrBuilder::~StreamingCsrBuilder() {
  for (const Run& r : runs_) {
    if (!r.path.empty()) std::remove(r.path.c_str());
  }
}

void StreamingCsrBuilder::note_bytes() {
  peak_bytes_ = std::max(peak_bytes_, staging_.size() * sizeof(CooEntry) + mem_run_bytes_);
}

void StreamingCsrBuilder::add(index_t row, index_t col, value_t value) {
  if (row < 0 || row >= rows_ || col < 0 || col >= cols_) {
    throw invalid_matrix("builder entry (" + std::to_string(row) + ", " + std::to_string(col) +
                         ") out of range for " + std::to_string(rows_) + " x " +
                         std::to_string(cols_));
  }
  staging_.push_back(CooEntry{row, col, value});
  ++entries_added_;
  note_bytes();
  if (staging_.size() >= budget_entries_) spill();
}

void StreamingCsrBuilder::add_entries(std::span<const CooEntry> entries) {
  for (const CooEntry& e : entries) add(e.row, e.col, e.value);
}

void StreamingCsrBuilder::spill() {
  if (staging_.empty()) return;
  std::stable_sort(staging_.begin(), staging_.end(), by_row_col);

  std::string dir = cfg_.spill_dir;
  if (dir.empty()) dir = std::filesystem::temp_directory_path().string();
  const std::string path = dir + "/rrspmm_spill_" + std::to_string(::getpid()) + "_" +
                           std::to_string(reinterpret_cast<std::uintptr_t>(this)) + "_" +
                           std::to_string(runs_.size()) + ".run";

  for (int failures = 0;;) {
    try {
      fault::hit(fault::points::kIoSpill);
      std::FILE* f = std::fopen(path.c_str(), "wb");
      if (f == nullptr) throw io_error("cannot open spill run " + path + " for writing");
      const std::size_t n = staging_.size();
      const bool ok = std::fwrite(staging_.data(), sizeof(CooEntry), n, f) == n;
      const bool closed = std::fclose(f) == 0;
      if (!ok || !closed) {
        std::remove(path.c_str());
        throw io_error("short write on spill run " + path);
      }
      Run r;
      r.path = path;
      r.count = static_cast<offset_t>(n);
      runs_.push_back(std::move(r));
      ++spilled_runs_;
      staging_.clear();
      staging_.shrink_to_fit();
      return;
    } catch (const fault::injected_fault&) {
      if (++failures >= 2) {
        // Degrade: the run stays resident. Correctness is unaffected —
        // in-memory runs merge exactly like disk runs — only the budget
        // is exceeded, which peak_staging_bytes makes visible.
        Run r;
        r.count = static_cast<offset_t>(staging_.size());
        mem_run_bytes_ += staging_.size() * sizeof(CooEntry);
        r.mem = std::move(staging_);
        runs_.push_back(std::move(r));
        ++degraded_runs_;
        staging_ = {};
        note_bytes();
        return;
      }
    }
  }
}

template <typename Emit>
void StreamingCsrBuilder::merge_runs(Emit&& emit) {
  // The final staging window acts as the last run, sorted in place.
  std::stable_sort(staging_.begin(), staging_.end(), by_row_col);

  std::vector<RunCursor> cursors(runs_.size() + (staging_.empty() ? 0 : 1));
  for (std::size_t i = 0; i < runs_.size(); ++i) {
    cursors[i].count = runs_[i].count;
    if (runs_[i].path.empty()) {
      cursors[i].mem = std::move(runs_[i].mem);
    } else {
      cursors[i].file = std::make_unique<ByteReader>(runs_[i].path);
      if (cursors[i].file->size() !=
          static_cast<std::uint64_t>(runs_[i].count) * sizeof(CooEntry)) {
        throw io_error("spill run " + runs_[i].path + " has unexpected size");
      }
    }
  }
  if (!staging_.empty()) {
    RunCursor& last = cursors.back();
    last.count = static_cast<offset_t>(staging_.size());
    last.mem = std::move(staging_);
  }
  for (RunCursor& c : cursors) c.advance();

  // Min-heap of run indices ordered by (row, col, run index); runs are
  // arrival-ordered windows, so the tie-break reproduces arrival order
  // across duplicate groups.
  const auto heap_less = [&](std::size_t a, std::size_t b) {
    const CooEntry& x = cursors[a].cur;
    const CooEntry& y = cursors[b].cur;
    if (x.row != y.row) return x.row > y.row;
    if (x.col != y.col) return x.col > y.col;
    return a > b;
  };
  std::vector<std::size_t> heap;
  heap.reserve(cursors.size());
  for (std::size_t i = 0; i < cursors.size(); ++i) {
    if (cursors[i].valid) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), heap_less);

  bool have = false;
  CooEntry pending{};
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_less);
    const std::size_t i = heap.back();
    const CooEntry e = cursors[i].cur;
    cursors[i].advance();
    if (cursors[i].valid) {
      std::push_heap(heap.begin(), heap.end(), heap_less);
    } else {
      heap.pop_back();
    }
    if (have && pending.row == e.row && pending.col == e.col) {
      pending.value += e.value;  // left-to-right, global arrival order
    } else {
      if (have) emit(pending);
      pending = e;
      have = true;
    }
  }
  if (have) emit(pending);
}

sparse::CsrMatrix StreamingCsrBuilder::finish() {
  if (finished_) throw invalid_matrix("builder already finished");
  finished_ = true;
  std::vector<offset_t> rowptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> colidx;
  std::vector<value_t> values;
  merge_runs([&](const CooEntry& e) {
    ++rowptr[static_cast<std::size_t>(e.row) + 1];
    colidx.push_back(e.col);
    values.push_back(e.value);
  });
  for (std::size_t i = 1; i < rowptr.size(); ++i) rowptr[i] += rowptr[i - 1];
  return sparse::CsrMatrix(rows_, cols_, std::move(rowptr), std::move(colidx), std::move(values));
}

void StreamingCsrBuilder::finish_to_rrsb(const std::string& path, index_t block_rows) {
  if (finished_) throw invalid_matrix("builder already finished");
  finished_ = true;
  RrsbWriter writer(path, rows_, cols_, block_rows);
  std::vector<offset_t> local_rowptr{0};
  std::vector<index_t> colbuf;
  std::vector<value_t> valbuf;
  index_t next_row = 0;

  // Closes rows [next_row, upto), flushing each block as it completes.
  // Merge emission is row-ascending, so a row's entries are all in
  // colbuf/valbuf by the time the row closes.
  const auto close_rows_until = [&](index_t upto) {
    while (next_row < upto) {
      local_rowptr.push_back(static_cast<offset_t>(colbuf.size()));
      ++next_row;
      if (next_row % block_rows == 0 || next_row == rows_) {
        writer.append_block(local_rowptr, colbuf, valbuf);
        local_rowptr.assign(1, 0);
        colbuf.clear();
        valbuf.clear();
      }
    }
  };

  merge_runs([&](const CooEntry& e) {
    close_rows_until(e.row);
    colbuf.push_back(e.col);
    valbuf.push_back(e.value);
  });
  close_rows_until(rows_);
  writer.finish();
}

}  // namespace rrspmm::io
