#include "io/mm_stream.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstring>
#include <sstream>

namespace rrspmm::io {

using sparse::CooEntry;
using sparse::io_error;

namespace {

/// A numeric token is never longer than this; when fewer bytes remain
/// in the window and the file has more, the window slides first so
/// tokens are never split across a refill.
constexpr std::size_t kTokenSlack = 64;

}  // namespace

MmChunkReader::MmChunkReader(const std::string& path, std::size_t chunk_bytes)
    : bytes_(path), chunk_bytes_(std::max<std::size_t>(chunk_bytes, 2 * kTokenSlack)) {
  window_.resize(std::clamp<std::size_t>(chunk_bytes_, 4096, 256u << 10));

  // Header: banner line, comment lines, size line — line-oriented, with
  // the same acceptance rules as the resident reader.
  std::string line;
  const auto read_line = [&](std::string& out) {
    out.clear();
    for (;;) {
      while (wpos_ < wlen_) {
        const char ch = window_[wpos_++];
        if (ch == '\n') return true;
        out.push_back(ch);
      }
      if (fpos_ >= bytes_.size()) return !out.empty();
      refill();
    }
  };
  const auto strip_cr = [](std::string& s) {
    if (!s.empty() && s.back() == '\r') s.pop_back();
  };

  if (!read_line(line)) throw io_error("empty Matrix Market stream");
  strip_cr(line);
  const sparse::MmBanner banner = sparse::parse_mm_banner(line);

  bool have_size = false;
  while (read_line(line)) {
    strip_cr(line);
    if (!line.empty() && line[0] != '%') {
      have_size = true;
      break;
    }
  }
  if (!have_size) throw io_error("missing Matrix Market size line");
  std::istringstream ss(line);
  std::int64_t rows = 0, cols = 0, nnz = 0;
  if (!(ss >> rows >> cols >> nnz)) throw io_error("malformed size line: " + line);
  sparse::check_mm_sizes(rows, cols, nnz);

  hdr_.rows = static_cast<index_t>(rows);
  hdr_.cols = static_cast<index_t>(cols);
  hdr_.declared_entries = nnz;
  hdr_.pattern = banner.pattern;
  hdr_.symmetric = banner.symmetric;
}

bool MmChunkReader::refill() {
  const std::size_t rem = wlen_ - wpos_;
  if (rem > 0) std::memmove(window_.data(), window_.data() + wpos_, rem);
  wpos_ = 0;
  wlen_ = rem;
  const std::size_t want =
      std::min<std::uint64_t>(window_.size() - wlen_, bytes_.size() - fpos_);
  if (want == 0) return false;
  bytes_.read_at(fpos_, window_.data() + wlen_, want);
  wlen_ += want;
  fpos_ += want;
  return true;
}

void MmChunkReader::skip_ws() {
  for (;;) {
    while (wpos_ < wlen_ && std::isspace(static_cast<unsigned char>(window_[wpos_]))) ++wpos_;
    if (wpos_ < wlen_ || fpos_ >= bytes_.size()) return;
    refill();
  }
}

std::int64_t MmChunkReader::parse_int(const char* what) {
  skip_ws();
  if (wlen_ - wpos_ < kTokenSlack && fpos_ < bytes_.size()) refill();
  std::int64_t v = 0;
  const auto [p, ec] = std::from_chars(window_.data() + wpos_, window_.data() + wlen_, v);
  if (ec != std::errc{}) throw io_error(what);
  wpos_ = static_cast<std::size_t>(p - window_.data());
  return v;
}

double MmChunkReader::parse_value() {
  skip_ws();
  if (wlen_ - wpos_ < kTokenSlack && fpos_ < bytes_.size()) refill();
  double v = 0.0;
  const auto [p, ec] = std::from_chars(window_.data() + wpos_, window_.data() + wlen_, v);
  if (ec != std::errc{}) throw io_error("malformed value");
  wpos_ = static_cast<std::size_t>(p - window_.data());
  return v;
}

bool MmChunkReader::next_chunk(std::vector<CooEntry>& out) {
  out.clear();
  if (parsed_ >= hdr_.declared_entries) return false;

  const std::uint64_t start = fpos_ - (wlen_ - wpos_);
  while (parsed_ < hdr_.declared_entries) {
    const std::string at = "at entry " + std::to_string(parsed_ + 1) + " of " +
                           std::to_string(hdr_.declared_entries);
    const std::int64_t r = parse_int(("malformed or truncated entry list " + at).c_str());
    const std::int64_t c = parse_int(("malformed or truncated entry list " + at).c_str());
    double v = 1.0;
    if (!hdr_.pattern) {
      try {
        v = parse_value();
      } catch (const io_error&) {
        throw io_error("malformed or truncated value " + at);
      }
    }
    if (r < 1 || r > hdr_.rows || c < 1 || c > hdr_.cols) {
      throw io_error("entry " + std::to_string(parsed_ + 1) + ": index (" + std::to_string(r) +
                     ", " + std::to_string(c) + ") out of range for " + std::to_string(hdr_.rows) +
                     " x " + std::to_string(hdr_.cols));
    }
    const auto ri = static_cast<index_t>(r - 1);
    const auto ci = static_cast<index_t>(c - 1);
    out.push_back(CooEntry{ri, ci, static_cast<value_t>(v)});
    ++emitted_;
    if (hdr_.symmetric && ri != ci) {
      out.push_back(CooEntry{ci, ri, static_cast<value_t>(v)});
      ++emitted_;
    }
    ++parsed_;
    const std::uint64_t consumed = fpos_ - (wlen_ - wpos_) - start;
    if (consumed >= chunk_bytes_) break;
  }
  return !out.empty();
}

sparse::CsrMatrix read_matrix_market_streamed(const std::string& path,
                                              const StreamingBuildConfig& cfg,
                                              std::size_t chunk_bytes) {
  MmChunkReader reader(path, chunk_bytes);
  StreamingCsrBuilder builder(reader.header().rows, reader.header().cols, cfg);
  std::vector<CooEntry> chunk;
  while (reader.next_chunk(chunk)) builder.add_entries(chunk);
  return builder.finish();
}

void ingest_to_rrsb(const std::string& mm_path, const std::string& rrsb_path,
                    const StreamingBuildConfig& cfg, index_t block_rows,
                    std::size_t chunk_bytes) {
  MmChunkReader reader(mm_path, chunk_bytes);
  StreamingCsrBuilder builder(reader.header().rows, reader.header().cols, cfg);
  std::vector<CooEntry> chunk;
  while (reader.next_chunk(chunk)) builder.add_entries(chunk);
  builder.finish_to_rrsb(rrsb_path, block_rows);
}

}  // namespace rrspmm::io
