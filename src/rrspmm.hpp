// Umbrella header: everything a library consumer typically needs.
//
//   #include <rrspmm/rrspmm.hpp>   (installed)
//   #include "rrspmm.hpp"          (in-tree, with src/ on the include path)
//
// For finer-grained inclusion, pull the individual module headers (each
// is self-contained): core/pipeline.hpp is the main entry point.
#pragma once

#include "aspt/aspt.hpp"
#include "core/baseline_reorder.hpp"
#include "core/fingerprint.hpp"
#include "core/pipeline.hpp"
#include "core/plan_io.hpp"
#include "core/reorder_engine.hpp"
#include "core/vertex_reorder.hpp"
#include "fault/fault.hpp"
#include "gpusim/device.hpp"
#include "io/io.hpp"
#include "gpusim/traffic.hpp"
#include "kernels/sddmm.hpp"
#include "kernels/spmm.hpp"
#include "kernels/spmv.hpp"
#include "lsh/candidates.hpp"
#include "lsh/minhash.hpp"
#include "router/calibration.hpp"
#include "router/router.hpp"
#include "runtime/runtime.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dense_view.hpp"
#include "sparse/io_mm.hpp"
#include "sparse/permute.hpp"
#include "sparse/stats.hpp"
#include "sparse/types.hpp"
#include "sparse/validate.hpp"
#include "spgemm/spgemm.hpp"
