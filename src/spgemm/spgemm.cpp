#include "spgemm/spgemm.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "spgemm/accumulators.hpp"
#include "sparse/validate.hpp"

namespace rrspmm::spgemm {

const char* to_string(Accumulator a) {
  switch (a) {
    case Accumulator::hash: return "hash";
    case Accumulator::sort: return "sort";
    case Accumulator::auto_select: return "auto";
  }
  return "?";
}

namespace {

void check_shapes(const CsrMatrix& a, const CsrMatrix& b, const char* what) {
  if (a.cols() != b.rows()) {
    throw sparse::invalid_matrix(std::string(what) + ": A cols must equal B rows");
  }
}

Accumulator resolve(const SpgemmConfig& cfg, offset_t upper_bound) {
  if (cfg.accumulator != Accumulator::auto_select) return cfg.accumulator;
  return upper_bound <= cfg.sort_threshold ? Accumulator::sort : Accumulator::hash;
}

/// Emits row `out_row`'s contributions — A's row walked in storage
/// (ascending-j) order, each B row in storage (ascending-c) order — into
/// `acc`. This order is the determinism anchor: every accumulator and
/// every re-execution sees the identical contribution stream.
template <typename Acc>
offset_t accumulate_row(const CsrMatrix& a, const CsrMatrix& b, index_t out_row,
                        offset_t upper_bound, Acc& acc, index_t* cols_out, value_t* vals_out) {
  acc.reset(upper_bound);
  const auto acols = a.row_cols(out_row);
  const auto avals = a.row_vals(out_row);
  for (std::size_t t = 0; t < acols.size(); ++t) {
    const index_t j = acols[t];
    const value_t av = avals[t];
    const auto bcols = b.row_cols(j);
    const auto bvals = b.row_vals(j);
    for (std::size_t u = 0; u < bcols.size(); ++u) {
      const value_t p = av * bvals[u];
      acc.add(bcols[u], p);
    }
  }
  return acc.flush(cols_out, vals_out);
}

}  // namespace

offset_t row_upper_bound(const CsrMatrix& a, const CsrMatrix& b, index_t row) {
  offset_t ub = 0;
  for (const index_t j : a.row_cols(row)) ub += b.row_nnz(j);
  return ub;
}

void symbolic_rows(const CsrMatrix& a, const CsrMatrix& b, offset_t* counts, index_t row_begin,
                   index_t row_end, const SpgemmConfig& cfg) {
  if (cfg.probes) fault::hit(fault::points::kSpgemmSymbolic);
  // Gather-sort-unique per row: deterministic and accumulator-agnostic,
  // so the symbolic structure never depends on the numeric configuration.
  std::vector<index_t> scratch;
  for (index_t i = row_begin; i < row_end; ++i) {
    scratch.clear();
    for (const index_t j : a.row_cols(i)) {
      const auto bcols = b.row_cols(j);
      scratch.insert(scratch.end(), bcols.begin(), bcols.end());
    }
    std::sort(scratch.begin(), scratch.end());
    const auto last = std::unique(scratch.begin(), scratch.end());
    counts[i - row_begin] = static_cast<offset_t>(last - scratch.begin());
  }
}

SymbolicResult symbolic(const CsrMatrix& a, const CsrMatrix& b, const SpgemmConfig& cfg) {
  check_shapes(a, b, "spgemm::symbolic");
  SymbolicResult res;
  res.rowptr.assign(static_cast<std::size_t>(a.rows()) + 1, 0);
  if (a.rows() > 0) {
    symbolic_rows(a, b, res.rowptr.data() + 1, 0, a.rows(), cfg);
  }
  for (std::size_t i = 1; i < res.rowptr.size(); ++i) res.rowptr[i] += res.rowptr[i - 1];
  for (index_t i = 0; i < a.rows(); ++i) res.upper_bound_nnz += row_upper_bound(a, b, i);
  res.flops = 2.0 * static_cast<double>(res.upper_bound_nnz);
  return res;
}

void numeric_rows(const CsrMatrix& a, const CsrMatrix& b, const std::vector<offset_t>& rowptr,
                  index_t* colidx, value_t* values, index_t row_begin, index_t row_end,
                  const SpgemmConfig& cfg, const std::vector<index_t>* row_order,
                  AccumulatorCounts* counts) {
  if (cfg.probes) fault::hit(fault::points::kSpgemmAccumulate);
  HashAccumulator hash;
  SortAccumulator sort;
  for (index_t p = row_begin; p < row_end; ++p) {
    const index_t r = row_order ? (*row_order)[static_cast<std::size_t>(p)] : p;
    const offset_t base = rowptr[static_cast<std::size_t>(r)];
    const offset_t expect = rowptr[static_cast<std::size_t>(r) + 1] - base;
    const offset_t ub = row_upper_bound(a, b, r);
    offset_t n;
    if (resolve(cfg, ub) == Accumulator::sort) {
      n = accumulate_row(a, b, r, ub, sort, colidx + base, values + base);
      if (counts) ++counts->sort_rows;
    } else {
      n = accumulate_row(a, b, r, ub, hash, colidx + base, values + base);
      if (counts) ++counts->hash_rows;
    }
    if (n != expect) {
      throw sparse::invalid_matrix("spgemm::numeric_rows: row fill disagrees with symbolic count");
    }
  }
}

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, const SpgemmConfig& cfg,
                   AccumulatorCounts* counts) {
  sparse::validate_csr(a, "spgemm::multiply A");
  sparse::validate_csr(b, "spgemm::multiply B");
  SymbolicResult sym = symbolic(a, b, cfg);
  std::vector<index_t> colidx(static_cast<std::size_t>(sym.nnz()));
  std::vector<value_t> values(static_cast<std::size_t>(sym.nnz()));
  if (a.rows() > 0) {
    numeric_rows(a, b, sym.rowptr, colidx.data(), values.data(), 0, a.rows(), cfg, nullptr,
                 counts);
  }
  return CsrMatrix(a.rows(), b.cols(), std::move(sym.rowptr), std::move(colidx),
                   std::move(values));
}

}  // namespace rrspmm::spgemm
