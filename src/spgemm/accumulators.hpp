// Row accumulators for Gustavson SpGEMM.
//
// Both accumulators consume the contributions of one output row — the
// products a_ij * b_jc emitted while walking A's row i in ascending-j
// order and each B row j in ascending-c order — and emit the row's
// distinct columns sorted ascending with their summed values.
//
// The determinism contract (what makes hash-vs-sort bitwise equality
// hold): for a fixed output column c, both accumulators add the
// contributions in exactly their arrival order. The hash accumulator
// adds each product into the column's slot as it arrives; the sort
// accumulator records (column, product) pairs and stable-sorts them by
// column, which preserves arrival order within a column, then reduces
// each run left to right. Same addends, same order, same float rounding
// — identical bits. (The spgemm library is compiled with
// -ffp-contract=off so the compiler cannot fuse a product into one
// accumulator's addition but not the other's.)
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sparse/types.hpp"

namespace rrspmm::spgemm {

/// Open-addressing hash map keyed by output column. O(1) amortised per
/// contribution regardless of the row's upper bound; flush sorts only
/// the distinct columns. The right choice for long, collision-heavy
/// rows.
class HashAccumulator {
 public:
  /// Prepares for a row with at most `upper_bound` contributions.
  /// Buffers are reused across rows; only previously occupied slots are
  /// cleared.
  void reset(offset_t upper_bound) {
    std::size_t cap = 16;
    while (cap < static_cast<std::size_t>(upper_bound) * 2) cap <<= 1;
    if (keys_.size() != cap) {
      keys_.assign(cap, -1);
      vals_.assign(cap, value_t{0});
    } else {
      for (const std::uint32_t s : used_) keys_[s] = -1;
    }
    used_.clear();
    mask_ = static_cast<std::uint32_t>(cap - 1);
  }

  void add(index_t col, value_t v) {
    std::uint32_t slot = (static_cast<std::uint32_t>(col) * 2654435769u) & mask_;
    for (;;) {
      if (keys_[slot] == col) {
        vals_[slot] += v;
        return;
      }
      if (keys_[slot] < 0) {
        keys_[slot] = col;
        vals_[slot] = v;
        used_.push_back(slot);
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Writes the distinct columns (ascending) and their sums; returns the
  /// count. The accumulator is left ready for the next reset().
  offset_t flush(index_t* cols_out, value_t* vals_out) {
    std::sort(used_.begin(), used_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return keys_[a] < keys_[b]; });
    for (std::size_t i = 0; i < used_.size(); ++i) {
      cols_out[i] = keys_[used_[i]];
      vals_out[i] = vals_[used_[i]];
    }
    const offset_t n = static_cast<offset_t>(used_.size());
    for (const std::uint32_t s : used_) keys_[s] = -1;
    used_.clear();
    return n;
  }

 private:
  std::vector<index_t> keys_;         ///< -1 = empty slot
  std::vector<value_t> vals_;
  std::vector<std::uint32_t> used_;   ///< occupied slots, insertion order
  std::uint32_t mask_ = 0;
};

/// Dense list of (column, product) pairs reduced after a stable sort.
/// O(ub log ub) per row but with tiny constants and no hashing; the
/// right choice for short rows, and the accumulator the degraded
/// sequential path uses.
class SortAccumulator {
 public:
  void reset(offset_t upper_bound) {
    entries_.clear();
    entries_.reserve(static_cast<std::size_t>(upper_bound));
  }

  void add(index_t col, value_t v) { entries_.emplace_back(col, v); }

  offset_t flush(index_t* cols_out, value_t* vals_out) {
    std::stable_sort(
        entries_.begin(), entries_.end(),
        [](const std::pair<index_t, value_t>& a, const std::pair<index_t, value_t>& b) {
          return a.first < b.first;
        });
    offset_t n = 0;
    std::size_t i = 0;
    while (i < entries_.size()) {
      const index_t c = entries_[i].first;
      value_t acc = entries_[i].second;  // first contribution initialises,
      ++i;                               // the rest add in arrival order
      while (i < entries_.size() && entries_[i].first == c) {
        acc += entries_[i].second;
        ++i;
      }
      cols_out[n] = c;
      vals_out[n] = acc;
      ++n;
    }
    entries_.clear();
    return n;
  }

 private:
  std::vector<std::pair<index_t, value_t>> entries_;
};

}  // namespace rrspmm::spgemm
