// CSR×CSR sparse-sparse multiplication (SpGEMM), Gustavson row-wise.
//
// C = A * B with all three matrices in CSR. Two-phase structure:
//
//   symbolic  — exact per-row output counts (distinct columns of
//               ∪_{j∈A_i} B_j), prefix-summed into C's rowptr, so the
//               output arrays are allocated exactly once;
//   numeric   — fills each row's colidx/values segment through a row
//               accumulator (accumulators.hpp): hash-map or sort-based,
//               selected per row by SpgemmConfig.
//
// Determinism contract (mirrors the kernels/ row-range ABI): every
// numeric entry point writes its target rows' segments completely and
// independently, so any partition of [0, rows) across threads, shards or
// re-executions is bitwise identical to the sequential multiply — and
// the accumulator choice never changes result bits either (see
// accumulators.hpp for why). The row-range overloads take an optional
// processing-order permutation so runtime::WorkerPool and
// dist::ShardedExecutor can fan out contiguous ranges of the *permuted*
// row space — reusing the paper's LSH/cluster reordering of the left
// operand for shard locality — while C stays in A's original row order.
//
// Fault probes: symbolic chunks hit fault::points::kSpgemmSymbolic and
// numeric ranges kSpgemmAccumulate when cfg.probes is set. Recovery
// layers re-run or degrade with probes off.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace rrspmm::spgemm {

using sparse::CsrMatrix;

/// Row accumulator selection. auto_select picks per row by the row's
/// upper-bound contribution count (≤ sort_threshold → sort, else hash) —
/// a pure function of the input structure, so the choice is identical on
/// every thread/shard and never affects result bits, only speed.
enum class Accumulator : std::uint8_t {
  hash = 0,
  sort = 1,
  auto_select = 2,
};

/// Resolved accumulator kinds (auto_select resolves to one of these).
inline constexpr std::size_t kAccumulatorKinds = 2;

const char* to_string(Accumulator a);

struct SpgemmConfig {
  Accumulator accumulator = Accumulator::auto_select;
  /// auto_select boundary: rows whose upper-bound product count is at
  /// most this use the sort accumulator.
  offset_t sort_threshold = 192;
  /// Consult the compiled-in fault probes. The degraded sequential path
  /// runs with probes off so an armed chaos plan cannot re-fault it.
  bool probes = true;
};

/// Output of the symbolic phase.
struct SymbolicResult {
  std::vector<offset_t> rowptr;   ///< exact C rowptr, size A.rows()+1
  offset_t upper_bound_nnz = 0;   ///< Σ over A's nonzeros (i,j) of |B_j|
  double flops = 0.0;             ///< 2 * upper_bound_nnz (mul + add per product)

  offset_t nnz() const { return rowptr.empty() ? 0 : rowptr.back(); }
};

/// Per-call accumulator-choice histogram (rows accumulated by each kind).
struct AccumulatorCounts {
  std::uint64_t hash_rows = 0;
  std::uint64_t sort_rows = 0;
};

/// Upper-bound contribution count of output row `row`: Σ_{j∈A_row} |B_j|.
/// The quantity auto_select decides on and the symbolic scratch is sized
/// by.
offset_t row_upper_bound(const CsrMatrix& a, const CsrMatrix& b, index_t row);

/// Symbolic row range: writes the exact output count of rows
/// [row_begin, row_end) into counts[row - row_begin]. Hits
/// kSpgemmSymbolic once per call when cfg.probes. No shape validation
/// (range entry point; full-matrix callers validate once).
void symbolic_rows(const CsrMatrix& a, const CsrMatrix& b, offset_t* counts, index_t row_begin,
                   index_t row_end, const SpgemmConfig& cfg = {});

/// Full symbolic phase (sequential): validates operand shapes, counts
/// every row, prefix-sums into rowptr.
SymbolicResult symbolic(const CsrMatrix& a, const CsrMatrix& b, const SpgemmConfig& cfg = {});

/// Numeric row range: fills colidx/values segments [rowptr[r], rowptr[r+1])
/// for each target row r. Positions [row_begin, row_end) index the
/// *processing* order: with `row_order` (a gather permutation of
/// [0, A.rows())) position p computes output row row_order[p]; without
/// it, row p itself. Hits kSpgemmAccumulate once per call when
/// cfg.probes. `counts`, when given, accumulates the accumulator-choice
/// histogram. Each target row's segment is written completely, so
/// re-running a range is idempotent.
void numeric_rows(const CsrMatrix& a, const CsrMatrix& b, const std::vector<offset_t>& rowptr,
                  index_t* colidx, value_t* values, index_t row_begin, index_t row_end,
                  const SpgemmConfig& cfg = {}, const std::vector<index_t>* row_order = nullptr,
                  AccumulatorCounts* counts = nullptr);

/// Sequential convenience: symbolic + numeric over all rows. Validates
/// both operands (sparse::validate_csr) and the result's construction
/// re-checks the output invariants, so a structurally broken product
/// cannot escape. This is also the degradation target: recovery layers
/// call it with {Accumulator::sort, probes=false}.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, const SpgemmConfig& cfg = {},
                   AccumulatorCounts* counts = nullptr);

}  // namespace rrspmm::spgemm
