// Multi-device sharded-execution simulator.
//
// Instantiates one DeviceConfig (and, inside gpusim, one private L2) per
// shard and composes per-shard kernel estimates with interconnect
// transfer time into a makespan:
//
//   row mode:    scatter X slices -> per-device kernels -> gather Y shards
//   column mode: scatter X row-slices -> per-device partial kernels ->
//                tree-reduce the partial Ys
//
// The X payload of a row shard is what that shard actually reads — its
// distinct referenced columns (dense panel staging lists plus sparse
// columns) times K — so a partition that splits a Jaccard cluster across
// devices pays for the cluster's X rows twice, on the wire and in each
// device's cold L2. That is the multi-GPU restatement of the paper's
// single-GPU argument, and it is why reorder-aware shards beat
// nnz-balanced ones on shuffled-clustered matrices.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "core/shard_plan.hpp"
#include "dist/interconnect.hpp"
#include "gpusim/device.hpp"
#include "gpusim/traffic.hpp"

namespace rrspmm::dist {

struct MultiDeviceConfig {
  gpusim::DeviceConfig device = gpusim::DeviceConfig::p100();  ///< per-shard device
  InterconnectConfig interconnect = InterconnectConfig::nvlink();
};

/// One device's share of a sharded execution.
struct ShardSim {
  int device = 0;
  gpusim::SimResult kernel;  ///< traffic simulation on this device alone
  double x_bytes = 0.0;      ///< dense-operand payload scattered to it
  double y_bytes = 0.0;      ///< result payload it sends back
};

struct MultiDeviceResult {
  core::ShardMode mode = core::ShardMode::row;
  core::ShardStrategy strategy = core::ShardStrategy::nnz_balanced;
  int num_devices = 1;
  std::vector<ShardSim> shards;
  double scatter_s = 0.0;       ///< distributing the dense operand
  double collect_s = 0.0;       ///< gathering Y shards / reducing partials
  double max_kernel_s = 0.0;    ///< slowest device's kernel time
  double kernel_total_s = 0.0;  ///< summed kernel time (total device-seconds)
  double comm_bytes = 0.0;      ///< total bytes over the interconnect
  /// scatter + slowest kernel + collect: end-to-end latency of one
  /// sharded SpMM (collectives do not overlap compute in this model).
  double makespan_s = 0.0;
};

/// Extracts rows [row_begin, row_end) of a tiled matrix as a standalone
/// AsptMatrix (panels clipped at the range ends, source indices
/// renumbered to the shard's own nonzero space). A clipped panel keeps
/// its full dense-column list — each half re-stages the same X rows,
/// which is exactly the duplicated work a mid-panel shard boundary
/// causes on real hardware.
aspt::AsptMatrix extract_row_range(const aspt::AsptMatrix& a, index_t row_begin, index_t row_end);

/// Row-mode sharded SpMM estimate: `shard_plan` must be row mode and
/// match `plan`'s permuted row space. `plan.sparse_order` is restricted
/// per shard, so round-2 reordering keeps its effect device-locally.
MultiDeviceResult simulate_spmm_sharded(const core::ExecutionPlan& plan,
                                        const core::ShardPlan& shard_plan, index_t k,
                                        const MultiDeviceConfig& cfg);

/// Column-mode sharded SpMM estimate over the raw CSR matrix: each
/// device runs the row-wise kernel on its column slice, then the partial
/// Ys are tree-reduced.
MultiDeviceResult simulate_spmm_sharded_cols(const sparse::CsrMatrix& m,
                                             const core::ShardPlan& shard_plan, index_t k,
                                             const MultiDeviceConfig& cfg);

}  // namespace rrspmm::dist
