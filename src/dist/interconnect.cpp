#include "dist/interconnect.hpp"

#include <algorithm>
#include <cmath>

namespace rrspmm::dist {

double Interconnect::p2p_time(double bytes) const {
  if (bytes <= 0.0) return 0.0;
  return cfg_.latency_s + bytes / (cfg_.link_gbps * 1e9);
}

// Shared shape of scatter/gather: with an unlimited-fanout root every
// transfer rides its own link concurrently, so the collective finishes
// with its largest payload; with fanout k the n transfers serialise into
// ceil(n/k) rounds that pay one latency each and share k links' worth of
// bandwidth for the total payload.
double Interconnect::rounds_time(double total_bytes, double max_bytes, int n_transfers) const {
  if (n_transfers <= 0 || total_bytes <= 0.0) return 0.0;
  const double bw = cfg_.link_gbps * 1e9;
  if (cfg_.root_fanout <= 0) {
    return cfg_.latency_s + max_bytes / bw;
  }
  const int rounds = (n_transfers + cfg_.root_fanout - 1) / cfg_.root_fanout;
  return rounds * cfg_.latency_s + total_bytes / (cfg_.root_fanout * bw);
}

double Interconnect::scatter_time(const std::vector<double>& per_device_bytes) const {
  double total = 0.0;
  double biggest = 0.0;
  int transfers = 0;
  for (double b : per_device_bytes) {
    if (b <= 0.0) continue;
    total += b;
    biggest = std::max(biggest, b);
    ++transfers;
  }
  return rounds_time(total, biggest, transfers);
}

double Interconnect::broadcast_time(double bytes, int n_devices) const {
  if (bytes <= 0.0 || n_devices <= 0) return 0.0;
  return rounds_time(bytes * n_devices, bytes, n_devices);
}

double Interconnect::gather_time(const std::vector<double>& per_device_bytes) const {
  return scatter_time(per_device_bytes);  // symmetric: same links, reversed direction
}

double Interconnect::reduce_time(double bytes, int n_devices) const {
  if (bytes <= 0.0 || n_devices <= 1) return 0.0;
  const int rounds = static_cast<int>(std::ceil(std::log2(static_cast<double>(n_devices))));
  return rounds * p2p_time(bytes);
}

}  // namespace rrspmm::dist
