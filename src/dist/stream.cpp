#include "dist/stream.hpp"

#include <algorithm>
#include <cstring>
#include <memory>

#include "kernels/simd/specialize.hpp"
#include "kernels/spmm.hpp"
#include "runtime/worker_pool.hpp"

namespace rrspmm::dist {

using sparse::DenseMatrix;
using sparse::invalid_matrix;

core::ShardPlan plan_stream_rows(const io::RrsbReader& shard, int num_devices) {
  if (num_devices <= 0) throw invalid_matrix("plan_stream_rows: num_devices must be positive");
  core::ShardPlan plan;
  plan.mode = core::ShardMode::row;
  plan.strategy = core::ShardStrategy::nnz_balanced;
  plan.num_devices = num_devices;
  plan.rows = shard.rows();
  plan.cols = shard.cols();
  plan.row_shards.resize(static_cast<std::size_t>(num_devices));

  // Greedy sweep over block boundaries: device d's shard ends at the
  // first boundary whose cumulative nnz reaches the ideal cumulative
  // share (d+1)/num_devices, leaving the remaining blocks to later
  // devices. Pure function of the index, so the plan is deterministic.
  const offset_t total = shard.nnz();
  index_t block = 0;
  index_t row_begin = 0;
  for (int d = 0; d < num_devices; ++d) {
    const offset_t target = total <= 0 ? 0 : (total * (d + 1)) / num_devices;
    if (d + 1 == num_devices) {
      block = shard.num_blocks();
    } else {
      while (block < shard.num_blocks() &&
             (block + 1 < shard.num_blocks() ? shard.nnz_before(block + 1) : total) < target) {
        ++block;
      }
      if (block < shard.num_blocks()) ++block;  // include the crossing block
    }
    const index_t row_end = block >= shard.num_blocks() ? shard.rows() : shard.block_begin(block);
    auto& s = plan.row_shards[static_cast<std::size_t>(d)];
    s.row_begin = row_begin;
    s.row_end = row_end;
    const offset_t lo = row_begin >= shard.rows() || shard.num_blocks() == 0
                            ? total
                            : shard.nnz_before(row_begin / shard.block_rows());
    const offset_t hi =
        row_end >= shard.rows() || shard.num_blocks() == 0
            ? total
            : shard.nnz_before(row_end / shard.block_rows());
    s.nnz = hi - lo;
    row_begin = row_end;
  }
  plan.validate();
  return plan;
}

void sharded_spmm_stream(const io::RrsbReader& shard, const DenseMatrix& x, DenseMatrix& y,
                         const core::ShardPlan& plan, runtime::WorkerPool* pool) {
  if (plan.mode != core::ShardMode::row) {
    throw invalid_matrix("sharded_spmm_stream requires a row-mode plan");
  }
  if (plan.rows != shard.rows() || plan.cols != shard.cols()) {
    throw invalid_matrix("shard plan dimensions disagree with the shard file");
  }
  if (x.rows() != shard.cols() || y.rows() != shard.rows() || y.cols() != x.cols()) {
    throw invalid_matrix("sharded_spmm_stream operand shape mismatch");
  }

  // One shard = one unit of work: slice, multiply into a local Y, then
  // scatter the rows. The row-range kernel accumulates per row exactly
  // like the full kernel, and the scatter is a byte copy, so any shard
  // partition (and any worker interleaving) produces identical Y bits.
  // Streamed slices have no plan, so each shard builds its own
  // specialization record from the slice's row lengths — cheap (one
  // rowptr sweep) relative to the I/O that produced the slice.
  namespace simd = kernels::simd;
  const bool specialize = simd::specialization_compiled() && simd::specialization_enabled();
  const auto run_shard = [&](const core::RowShard& s) {
    if (s.rows() <= 0) return;
    const sparse::CsrMatrix slice = shard.read_range(s.row_begin, s.row_end);
    DenseMatrix y_local(slice.rows(), x.cols());
    simd::KernelConfig cfg = simd::active_config();
    if (specialize) {
      cfg.spec = std::make_shared<const simd::SpecializationPlan>(simd::specialize_rows(slice));
    }
    kernels::spmm_rowwise(slice, x, y_local, 0, slice.rows(), cfg);
    for (index_t r = 0; r < slice.rows(); ++r) {
      std::memcpy(y.row(s.row_begin + r).data(), y_local.row(r).data(),
                  static_cast<std::size_t>(x.cols()) * sizeof(value_t));
    }
  };

  if (pool != nullptr && pool->size() > 1 && plan.row_shards.size() > 1) {
    pool->parallel_for(plan.row_shards.size(),
                       [&](std::size_t i) { run_shard(plan.row_shards[i]); });
  } else {
    for (const core::RowShard& s : plan.row_shards) run_shard(s);
  }
}

}  // namespace rrspmm::dist
