// Streaming shard execution: row-range SpMM straight off an .rrsb
// shard file, without ever materialising the whole matrix.
//
// The .rrsb block index carries per-block nonzero counts, so an
// nnz-balanced row partition can be planned from the index alone —
// the out-of-core analogue of ShardPlanner's nnz_balanced strategy,
// with cuts restricted to block boundaries (the on-disk unit of
// access, as panel boundaries are the in-memory one). Each shard's
// rows are then materialised as a slice, multiplied with the serial
// row-range kernel, and written into the shard's Y rows; disjoint
// shards touch disjoint Y rows, and per-row accumulation order matches
// the resident kernel, so the result is bitwise equal to
// kernels::spmm_rowwise on the fully-loaded matrix.
#pragma once

#include "core/shard_plan.hpp"
#include "io/rrsb.hpp"
#include "sparse/dense.hpp"

namespace rrspmm::runtime {
class WorkerPool;
}

namespace rrspmm::dist {

/// nnz-balanced row partition of a shard file into `num_devices`
/// contiguous ranges, cut at block boundaries using only the index (no
/// block reads). Deterministic; empty shards appear when the file has
/// fewer blocks than devices. The result validates.
core::ShardPlan plan_stream_rows(const io::RrsbReader& shard, int num_devices);

/// Y = S * X where S lives in `shard`: every plan shard is sliced from
/// the file, multiplied, and scattered into its Y rows. Sequential when
/// `pool` is null (at most one shard slice resident at a time);
/// otherwise shards fan out over the pool (at most one slice per
/// in-flight shard). Bitwise equal to spmm_rowwise on the resident
/// matrix either way.
void sharded_spmm_stream(const io::RrsbReader& shard, const sparse::DenseMatrix& x,
                         sparse::DenseMatrix& y, const core::ShardPlan& plan,
                         runtime::WorkerPool* pool = nullptr);

}  // namespace rrspmm::dist
