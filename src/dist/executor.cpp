#include "dist/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/fault.hpp"
#include "kernels/detail/scalar_ref.hpp"
#include "kernels/spmm.hpp"
#include "sparse/permute.hpp"

namespace rrspmm::dist {

namespace {

namespace simd = kernels::simd;

bool is_identity(const std::vector<index_t>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<index_t>(i)) return false;
  }
  return true;
}

/// Caller's pinned config wins; otherwise the process-wide one. Either
/// way the plan's specialization record rides along unless the caller
/// attached its own.
simd::KernelConfig effective_config(const simd::KernelConfig* kernel,
                                    const core::ExecutionPlan& plan) {
  simd::KernelConfig cfg = kernel ? *kernel : simd::active_config();
  if (!cfg.spec) cfg.spec = plan.spec;
  return cfg;
}

void count_selection(runtime::Metrics* metrics, const simd::KernelSelection& sel) {
  metrics->count_kernel(sel.isa);
  if (sel.specialized) metrics->count_specialized();
}

double micros_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Shard-strategy decision for one batch. Routable only when the plan
/// carries a fingerprint (plans from PlanCache / plan files do; a
/// hand-built ExecutionPlan without one is executed statically).
router::Decision decide_strategy(const std::shared_ptr<router::Router>& r,
                                 const core::ExecutionPlan& plan, index_t k,
                                 ShardStrategy configured, ShardStrategy& strategy,
                                 runtime::Metrics* metrics) {
  router::Decision dec;
  if (!r || plan.fingerprint.empty()) return dec;
  dec = r->decide(plan.fingerprint, router::Workload::shard, k,
                  router::Router::shard_arms(static_cast<std::uint8_t>(configured)));
  if (!dec.routed) return dec;
  strategy = static_cast<ShardStrategy>(dec.choice.shard_strategy);
  if (metrics) {
    metrics->router_decisions.fetch_add(1, std::memory_order_relaxed);
    if (dec.explored) metrics->router_explorations.fetch_add(1, std::memory_order_relaxed);
  }
  return dec;
}

/// Reports the measured makespan of a routed batch back to the router
/// and the per-route metrics attribution.
void observe_strategy(const std::shared_ptr<router::Router>& r,
                      const core::ExecutionPlan& plan, index_t k,
                      const router::Decision& dec, double us, runtime::Metrics* metrics) {
  if (!dec.routed) return;
  r->observe(plan.fingerprint, router::Workload::shard, k, dec.choice, us);
  if (metrics) {
    metrics->route_latency.record(
        router::route_key(plan.fingerprint, router::Workload::shard, k, dec.choice), us);
  }
}

void spmm_shards(runtime::WorkerPool& pool, const aspt::AsptMatrix& a, const ShardPlan& sp,
                 const DenseMatrix& x, DenseMatrix& y, runtime::Metrics* metrics,
                 const simd::KernelConfig& cfg) {
  const simd::KernelSelection sel = simd::select_kernels(cfg, x.cols());
  pool.parallel_for(sp.row_shards.size(), [&](std::size_t si) {
    const core::RowShard& s = sp.row_shards[si];
    kernels::spmm_aspt_row_range(a, x, y, s.row_begin, s.row_end, cfg);
    if (metrics) {
      metrics->shards_executed.fetch_add(1, std::memory_order_relaxed);
      count_selection(metrics, sel);
    }
  });
}

/// Runs body(0..n-1) with each item preferentially on the node owning
/// its device (devices[i] mod node_count). Deadlock-free by the same
/// discipline as WorkerPool::parallel_for: every item is guarded by a
/// claim flag and the CALLER sweeps all items too, so progress never
/// depends on the node-targeted helper tasks actually running — they
/// only improve placement. Falls back to plain parallel_for on a
/// topology-blind pool. `body` must not throw (the shard loops catch
/// internally).
void run_on_device_nodes(runtime::WorkerPool& pool, const std::vector<int>& devices,
                         const std::function<void(std::size_t)>& body) {
  const std::size_t n = devices.size();
  if (n == 0) return;
  if (!pool.numa_active()) {
    pool.parallel_for(n, body);
    return;
  }

  struct State {
    std::vector<std::atomic<char>> claimed;
    std::atomic<std::size_t> done{0};
    std::size_t n = 0;
    const std::function<void(std::size_t)>* body = nullptr;
    std::mutex m;
    std::condition_variable cv;
    explicit State(std::size_t n_) : claimed(n_), n(n_) {}
  };
  auto st = std::make_shared<State>(n);
  st->body = &body;

  const auto claim_and_run = [](const std::shared_ptr<State>& s, std::size_t i) {
    char expected = 0;
    if (!s->claimed[i].compare_exchange_strong(expected, 1, std::memory_order_acq_rel)) return;
    (*s->body)(i);
    if (s->done.fetch_add(1, std::memory_order_acq_rel) + 1 == s->n) {
      std::lock_guard<std::mutex> lk(s->m);
      s->cv.notify_all();
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    pool.submit_on_node(devices[i] % pool.node_count(),
                        [st, claim_and_run, i] { claim_and_run(st, i); });
  }
  // Caller participation: claim whatever the helpers have not started
  // yet — own-node items first, so the cross-node claims that spoil
  // placement happen only once local work is gone. A helper arriving
  // later finds the item claimed and exits without touching `body`
  // (which may be gone by then — the state it does touch is
  // shared-owned).
  const int self = runtime::WorkerPool::current_node();
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool local = devices[i] % pool.node_count() == self;
      if ((pass == 0) == local) claim_and_run(st, i);
    }
  }

  std::unique_lock<std::mutex> lk(st->m);
  st->cv.wait(lk, [&] { return st->done.load(std::memory_order_acquire) == st->n; });
}

}  // namespace

void sharded_spmm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan,
                  const ShardPlan& shard_plan, const DenseMatrix& x, DenseMatrix& y,
                  runtime::Metrics* metrics, const simd::KernelConfig* kernel) {
  shard_plan.validate();
  if (shard_plan.mode != ShardMode::row) {
    throw sparse::invalid_matrix("sharded_spmm: shard plan is not row mode");
  }
  if (shard_plan.rows != plan.tiled.rows()) {
    throw sparse::invalid_matrix("sharded_spmm: shard plan rows do not match the plan");
  }
  const simd::KernelConfig cfg = effective_config(kernel, plan);
  if (is_identity(plan.row_perm)) {
    spmm_shards(pool, plan.tiled, shard_plan, x, y, metrics, cfg);
    return;
  }
  DenseMatrix yp(plan.tiled.rows(), x.cols());
  spmm_shards(pool, plan.tiled, shard_plan, x, yp, metrics, cfg);
  y = sparse::unpermute_dense_rows(yp, plan.row_perm);
}

void sharded_spmm_cols(runtime::WorkerPool& pool, const CsrMatrix& m, const ShardPlan& shard_plan,
                       const DenseMatrix& x, DenseMatrix& y, runtime::Metrics* metrics) {
  shard_plan.validate();
  if (shard_plan.mode != ShardMode::column) {
    throw sparse::invalid_matrix("sharded_spmm_cols: shard plan is not column mode");
  }
  if (shard_plan.rows != m.rows() || shard_plan.cols != m.cols()) {
    throw sparse::invalid_matrix("sharded_spmm_cols: shard plan does not match the matrix");
  }
  const index_t rows = m.rows();
  const index_t k = x.cols();
  for (index_t i = 0; i < rows; ++i) {
    auto out = y.row(i);
    std::fill(out.begin(), out.end(), value_t{0});
  }

  // Devices fold their partials in ascending column order, one device at
  // a time; rows are pool-parallel inside a device. Each row therefore
  // accumulates its nonzeros in exactly CSR storage order (columns are
  // sorted within a row), which is spmm_rowwise's order — the split is
  // invisible to the result bits.
  constexpr index_t kRowBlock = 64;
  const std::size_t blocks = static_cast<std::size_t>((rows + kRowBlock - 1) / kRowBlock);
  for (const core::ColShard& s : shard_plan.col_shards) {
    if (s.cols() == 0) continue;
    pool.parallel_for(blocks, [&](std::size_t bi) {
      const index_t rb = static_cast<index_t>(bi) * kRowBlock;
      const index_t re = std::min<index_t>(rb + kRowBlock, rows);
      for (index_t i = rb; i < re; ++i) {
        const auto cols = m.row_cols(i);
        const auto vals = m.row_vals(i);
        // The shard's slice of this row, by binary search on the sorted
        // column ids.
        const auto lo = std::lower_bound(cols.begin(), cols.end(), s.col_begin);
        const auto hi = std::lower_bound(lo, cols.end(), s.col_end);
        auto out = y.row(i);
        for (auto it = lo; it != hi; ++it) {
          const std::size_t j = static_cast<std::size_t>(it - cols.begin());
          kernels::detail::axpy(out.data(), x.row(*it).data(), vals[j], k);
        }
      }
    });
    if (metrics) metrics->shards_executed.fetch_add(1, std::memory_order_relaxed);
  }
}

ShardedExecutor::ShardedExecutor(ShardedExecutorConfig cfg)
    : cfg_(cfg), planner_(cfg.planner) {
  if (cfg_.num_devices < 1) {
    throw sparse::invalid_matrix("ShardedExecutor: num_devices must be >= 1");
  }
}

void ShardedExecutor::spmm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan,
                           sparse::DenseView x, sparse::DenseMutView y,
                           runtime::Metrics* metrics) {
  if (!x.valid() || !y.valid() || y.rows != plan.tiled.rows() || y.cols != x.cols) {
    throw sparse::invalid_matrix("ShardedExecutor::spmm: operand views do not match the plan");
  }
  ShardStrategy strategy = cfg_.strategy;
  const router::Decision rdec =
      decide_strategy(cfg_.router, plan, x.cols, cfg_.strategy, strategy, metrics);
  const auto rt0 = std::chrono::steady_clock::now();
  const ShardPlan sp = planner_.plan_rows(plan, cfg_.num_devices, strategy);
  if (metrics) metrics->sharded_batches.fetch_add(1, std::memory_order_relaxed);
  const simd::KernelConfig kcfg = effective_config(cfg_.kernel ? &*cfg_.kernel : nullptr, plan);
  const simd::KernelSelection ksel = simd::select_kernels(kcfg, x.cols);

  // Execute in permuted row space; scatter into the caller's y once at
  // the end, after all failover rounds, so recovery never perturbs the
  // output ordering. Identity plans write the caller's storage directly.
  const bool identity = is_identity(plan.row_perm);
  DenseMatrix yp_store;
  if (!identity) yp_store = DenseMatrix(plan.tiled.rows(), x.cols);
  sparse::DenseMutView yp = identity ? y : sparse::DenseMutView(yp_store);

  // One work item per (row range, owning device). Device ids index the
  // original shard assignment; a device that throws is dead for the rest
  // of this call and its ranges migrate to the survivors.
  struct Work {
    core::RowShard shard;
    int device = 0;
  };
  std::vector<Work> work;
  work.reserve(sp.row_shards.size());
  for (std::size_t d = 0; d < sp.row_shards.size(); ++d) {
    work.push_back({sp.row_shards[d], static_cast<int>(d)});
  }
  std::vector<char> dead(static_cast<std::size_t>(cfg_.num_devices), 0);

  int rounds = 0;
  while (!work.empty()) {
    std::vector<Work> failed;
    std::mutex failed_m;
    std::vector<int> devices;
    devices.reserve(work.size());
    for (const Work& w : work) devices.push_back(w.device);
    run_on_device_nodes(pool, devices, [&](std::size_t wi) {
      const Work& w = work[wi];
      try {
        fault::hit(fault::points::kShardExec);
        fault::hit_nothrow(fault::points::kShardStraggler);
        kernels::spmm_aspt_row_range(plan.tiled, x, yp, w.shard.row_begin, w.shard.row_end,
                                     kcfg);
        fault::hit(fault::points::kShardInterconnect);
        if (metrics) {
          metrics->shards_executed.fetch_add(1, std::memory_order_relaxed);
          count_selection(metrics, ksel);
        }
      } catch (const fault::injected_fault&) {
        if (metrics) {
          metrics->faults_injected.fetch_add(1, std::memory_order_relaxed);
          metrics->shard_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lk(failed_m);
        failed.push_back(w);
      } catch (...) {
        if (metrics) metrics->shard_failures.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(failed_m);
        failed.push_back(w);
      }
    });
    if (failed.empty()) break;

    for (const Work& w : failed) dead[static_cast<std::size_t>(w.device)] = 1;
    std::vector<int> survivors;
    for (int d = 0; d < cfg_.num_devices; ++d) {
      if (!dead[static_cast<std::size_t>(d)]) survivors.push_back(d);
    }
    if (survivors.empty() || rounds >= cfg_.max_failover_rounds) {
      throw shards_exhausted(survivors.empty()
                                 ? "ShardedExecutor: all devices failed"
                                 : "ShardedExecutor: failover rounds exhausted");
    }
    ++rounds;

    // Deterministic migration order regardless of which worker recorded
    // which failure first: re-plan ranges in ascending row order.
    std::sort(failed.begin(), failed.end(),
              [](const Work& a, const Work& b) { return a.shard.row_begin < b.shard.row_begin; });
    std::vector<Work> next;
    for (const Work& w : failed) {
      if (metrics) metrics->failovers.fetch_add(1, std::memory_order_relaxed);
      const ShardPlan rp =
          planner_.plan_row_range(plan, w.shard.row_begin, w.shard.row_end,
                                  static_cast<int>(survivors.size()), strategy);
      for (std::size_t i = 0; i < rp.row_shards.size(); ++i) {
        next.push_back({rp.row_shards[i], survivors[i % survivors.size()]});
      }
    }
    work = std::move(next);
  }

  if (!identity) {
    // Unpermute scatter straight into the caller's storage:
    // y.row(row_perm[i]) = yp.row(i). Same copies as
    // unpermute_dense_rows, no intermediate owned result.
    for (index_t i = 0; i < yp_store.rows(); ++i) {
      const auto src = yp_store.row(i);
      std::copy(src.begin(), src.end(), y.row(plan.row_perm[static_cast<std::size_t>(i)]));
    }
  }
  // Makespan of the whole sharded batch, failover included — a strategy
  // whose cuts keep failing scores as slow as it is in practice.
  observe_strategy(cfg_.router, plan, x.cols, rdec, micros_since(rt0), metrics);
}

void ShardedExecutor::spgemm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan,
                             const CsrMatrix& a, const CsrMatrix& b, CsrMatrix& c,
                             runtime::Metrics* metrics, const spgemm::SpgemmConfig& cfg) {
  if (a.rows() != plan.tiled.rows()) {
    throw sparse::invalid_matrix("ShardedExecutor::spgemm: left operand does not match the plan");
  }
  // Symbolic up front, outside the failover loop: it allocates the one
  // output structure every shard fills into. A throw here (probe or
  // organic) propagates to the server's retry layer, like a plan-build
  // failure.
  spgemm::SymbolicResult sym = runtime::parallel_spgemm_symbolic(pool, a, b, cfg, metrics);
  std::vector<index_t> colidx(static_cast<std::size_t>(sym.nnz()));
  std::vector<value_t> values(static_cast<std::size_t>(sym.nnz()));

  ShardStrategy strategy = cfg_.strategy;
  const router::Decision rdec =
      decide_strategy(cfg_.router, plan, b.cols(), cfg_.strategy, strategy, metrics);
  const auto rt0 = std::chrono::steady_clock::now();
  const ShardPlan sp = planner_.plan_rows(plan, cfg_.num_devices, strategy);
  if (metrics) metrics->sharded_batches.fetch_add(1, std::memory_order_relaxed);
  // Composed processing order (round 1 ∘ round 2): shard cuts index
  // positions of this order, so reorder-aware seams keep each device on
  // one cluster of similar B-row footprints.
  const std::vector<index_t> composed = core::spgemm_row_order(plan);
  const std::vector<index_t>* order = composed.empty() ? nullptr : &composed;

  struct Work {
    core::RowShard shard;
    int device = 0;
  };
  std::vector<Work> work;
  work.reserve(sp.row_shards.size());
  for (std::size_t d = 0; d < sp.row_shards.size(); ++d) {
    work.push_back({sp.row_shards[d], static_cast<int>(d)});
  }
  std::vector<char> dead(static_cast<std::size_t>(cfg_.num_devices), 0);

  int rounds = 0;
  while (!work.empty()) {
    std::vector<Work> failed;
    std::mutex failed_m;
    std::vector<int> devices;
    devices.reserve(work.size());
    for (const Work& w : work) devices.push_back(w.device);
    run_on_device_nodes(pool, devices, [&](std::size_t wi) {
      const Work& w = work[wi];
      try {
        fault::hit(fault::points::kShardExec);
        fault::hit_nothrow(fault::points::kShardStraggler);
        spgemm::AccumulatorCounts local;
        spgemm::numeric_rows(a, b, sym.rowptr, colidx.data(), values.data(), w.shard.row_begin,
                             w.shard.row_end, cfg, order, &local);
        fault::hit(fault::points::kShardInterconnect);
        if (metrics) {
          metrics->shards_executed.fetch_add(1, std::memory_order_relaxed);
          metrics->spgemm_rows_hash.fetch_add(local.hash_rows, std::memory_order_relaxed);
          metrics->spgemm_rows_sort.fetch_add(local.sort_rows, std::memory_order_relaxed);
        }
      } catch (const fault::injected_fault&) {
        if (metrics) {
          metrics->faults_injected.fetch_add(1, std::memory_order_relaxed);
          metrics->shard_failures.fetch_add(1, std::memory_order_relaxed);
        }
        std::lock_guard<std::mutex> lk(failed_m);
        failed.push_back(w);
      } catch (...) {
        if (metrics) metrics->shard_failures.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lk(failed_m);
        failed.push_back(w);
      }
    });
    if (failed.empty()) break;

    for (const Work& w : failed) dead[static_cast<std::size_t>(w.device)] = 1;
    std::vector<int> survivors;
    for (int d = 0; d < cfg_.num_devices; ++d) {
      if (!dead[static_cast<std::size_t>(d)]) survivors.push_back(d);
    }
    if (survivors.empty() || rounds >= cfg_.max_failover_rounds) {
      throw shards_exhausted(survivors.empty()
                                 ? "ShardedExecutor: all devices failed"
                                 : "ShardedExecutor: failover rounds exhausted");
    }
    ++rounds;

    std::sort(failed.begin(), failed.end(),
              [](const Work& a_, const Work& b_) { return a_.shard.row_begin < b_.shard.row_begin; });
    std::vector<Work> next;
    for (const Work& w : failed) {
      if (metrics) metrics->failovers.fetch_add(1, std::memory_order_relaxed);
      const ShardPlan rp =
          planner_.plan_row_range(plan, w.shard.row_begin, w.shard.row_end,
                                  static_cast<int>(survivors.size()), strategy);
      for (std::size_t i = 0; i < rp.row_shards.size(); ++i) {
        next.push_back({rp.row_shards[i], survivors[i % survivors.size()]});
      }
    }
    work = std::move(next);
  }

  c = CsrMatrix(a.rows(), b.cols(), std::move(sym.rowptr), std::move(colidx), std::move(values));
  observe_strategy(cfg_.router, plan, b.cols(), rdec, micros_since(rt0), metrics);
}

}  // namespace rrspmm::dist
