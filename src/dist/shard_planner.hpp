// Reorder-aware multi-device partitioner.
//
// Partitions an ExecutionPlan's (permuted) row space across devices. The
// interesting strategy is reorder_aware: after the paper's round-1
// reordering, rows of one Jaccard cluster are adjacent, and the ASpT
// tiling builds its dense tiles on panels of those adjacent rows. A shard
// boundary through a panel duplicates that panel's dense-column staging
// on two devices; a boundary through a cluster duplicates the cluster's
// X-row working set in two devices' L2s and in two devices' operand
// transfers. reorder_aware therefore cuts only at panel boundaries, and
// among the boundaries that keep the nonzero load balanced it picks the
// one with the lowest Jaccard similarity across the cut — the seam
// between clusters, not the middle of one.
#pragma once

#include <vector>

#include "core/pipeline.hpp"
#include "core/shard_plan.hpp"

namespace rrspmm::dist {

using core::ShardMode;
using core::ShardPlan;
using core::ShardStrategy;

struct ShardPlannerConfig {
  /// reorder_aware balance window: a panel boundary qualifies as a cut
  /// candidate if its cumulative-nnz deviation from the ideal cut is at
  /// most this fraction of one device's nnz share. Within the window the
  /// lowest balance-regularised score wins; with an empty window the
  /// nearest boundary is taken regardless of similarity.
  double balance_slack = 0.25;
  /// Weight of the balance term in the in-window score
  /// `sim + seam_balance_weight * dev / share`. Cluster seams differ from
  /// mid-cluster boundaries by a large similarity gap, so a modest weight
  /// keeps seam preference intact while stopping a marginally lower sim
  /// from dragging the cut to the far edge of the balance window.
  double seam_balance_weight = 0.25;
};

class ShardPlanner {
 public:
  explicit ShardPlanner(ShardPlannerConfig cfg = {}) : cfg_(cfg) {}

  /// Row-mode partition of `plan`'s permuted row space into
  /// `num_devices` contiguous ranges under `strategy`. Deterministic;
  /// empty shards are produced when the matrix offers fewer useful cut
  /// points than devices. The result validates.
  ShardPlan plan_rows(const core::ExecutionPlan& plan, int num_devices,
                      ShardStrategy strategy) const;

  /// Row-mode partition of the sub-range [row_begin, row_end) of `plan`'s
  /// permuted row space — the failover seam: when a device dies, its
  /// shard's range is re-cut across the survivors with the same
  /// seam-aware logic as the full partition (reorder_aware considers only
  /// panel boundaries strictly inside the range). The result's span is
  /// the given range and validates against it.
  ShardPlan plan_row_range(const core::ExecutionPlan& plan, index_t row_begin, index_t row_end,
                           int num_devices, ShardStrategy strategy) const;

  /// Column-mode partition of `m` for very wide X: each device owns a
  /// column range of `m` plus the matching X row slice, and partial
  /// products are reduced. contiguous splits columns evenly;
  /// nnz_balanced (and reorder_aware, which has no column-side meaning
  /// and degrades to it) balances nonzeros per device.
  ShardPlan plan_cols(const sparse::CsrMatrix& m, int num_devices,
                      ShardStrategy strategy = ShardStrategy::nnz_balanced) const;

 private:
  ShardPlan plan_rows_impl(const core::ExecutionPlan& plan, index_t lo, index_t hi,
                           int num_devices, ShardStrategy strategy, bool full_span) const;

  ShardPlannerConfig cfg_;
};

/// Nonzeros of each permuted row of a tiled matrix (dense tiles plus
/// sparse remainder) — the weight the balancing strategies cut on.
std::vector<offset_t> per_row_nnz(const aspt::AsptMatrix& tiled);

/// Sorted distinct column ids touched by row `row` (global index) of a
/// tiled matrix: its dense nonzeros' columns plus its sparse-part
/// columns. Used for boundary-similarity scoring and operand-transfer
/// accounting.
std::vector<index_t> row_columns(const aspt::AsptMatrix& tiled, index_t row);

}  // namespace rrspmm::dist
