// Sharded SpMM execution on a WorkerPool.
//
// One task per device shard instead of one per panel: each shard is a
// contiguous (permuted) row range from a ShardPlan, run through the
// row-range ASpT kernel on the FULL tiled matrix. The kernel guarantees
// that any partition of [0, rows) into ranges is bitwise equal to the
// unsharded execution, so the sharded result is identical to
// core::run_spmm no matter how the planner cut — the shards only change
// who computes which rows. Column mode computes partial products per
// column range and folds them device-by-device in ascending column
// order, which reproduces spmm_rowwise's per-row accumulation order
// exactly (CSR columns are sorted within a row), keeping that path
// bitwise-stable too.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "dist/shard_planner.hpp"
#include "router/router.hpp"
#include "runtime/execute.hpp"

namespace rrspmm::dist {

using sparse::CsrMatrix;
using sparse::DenseMatrix;

/// Thrown by ShardedExecutor::spmm when a batch cannot complete even with
/// failover: every device has failed, or re-planning exceeded
/// max_failover_rounds. The server's retry/degradation layer catches it.
class shards_exhausted : public std::runtime_error {
 public:
  explicit shards_exhausted(const std::string& what) : std::runtime_error(what) {}
};

/// Same contract as runtime::parallel_spmm (y in the caller's row order,
/// bitwise equal to core::run_spmm), but parallelised over the row-mode
/// `shard_plan`'s shards. `metrics`, when given, counts the shards.
void sharded_spmm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan,
                  const ShardPlan& shard_plan, const DenseMatrix& x, DenseMatrix& y,
                  runtime::Metrics* metrics = nullptr,
                  const kernels::simd::KernelConfig* kernel = nullptr);

/// Column-mode sharded SpMM on the raw CSR matrix: device d computes the
/// partial product of its column slice (rows split across the pool
/// within the device), and partials are accumulated sequentially in
/// ascending column order. Bitwise equal to kernels::spmm_rowwise.
void sharded_spmm_cols(runtime::WorkerPool& pool, const CsrMatrix& m, const ShardPlan& shard_plan,
                       const DenseMatrix& x, DenseMatrix& y,
                       runtime::Metrics* metrics = nullptr);

struct ShardedExecutorConfig {
  int num_devices = 2;
  ShardStrategy strategy = ShardStrategy::reorder_aware;
  ShardPlannerConfig planner;
  /// Failover budget per spmm() call: how many times failed shards may be
  /// re-planned onto surviving devices before the batch gives up with
  /// shards_exhausted. 0 disables failover entirely.
  int max_failover_rounds = 3;
  /// SIMD kernel selection for the shard row-range kernels; nullopt uses
  /// the process-wide simd::active_config(). Shard results are bitwise
  /// identical either way on the default (non-fma) path.
  std::optional<kernels::simd::KernelConfig> kernel;
  /// Adaptive-execution router for the shard-strategy decision: when set
  /// and the plan carries a fingerprint, each spmm()/spgemm() call asks
  /// it to pick among the three strategies (cfg.strategy offered as the
  /// default arm) and reports the measured batch makespan back. Failover
  /// re-cuts use the decided strategy too. Any strategy partitions the
  /// same bitwise-stable row ranges, so the decision never changes result
  /// bits. Null (the default) keeps the static cfg.strategy.
  std::shared_ptr<router::Router> router;
};

/// runtime::Executor that shards every batch across simulated devices.
/// Plugs into runtime::ServerConfig::executor; SpMM requests are cut by
/// the configured strategy, SDDMM falls back to the panel-parallel path
/// (the base-class default).
///
/// Failure handling: a shard that throws marks its device dead for the
/// rest of the call, and the shard's row range is re-planned across the
/// surviving devices with the same seam-aware cuts (plan_row_range). The
/// row-range kernel zero-fills its target rows before accumulating, so a
/// re-run of a failed shard is idempotent and the recovered result stays
/// bitwise-equal to the fault-free one.
class ShardedExecutor final : public runtime::Executor {
 public:
  explicit ShardedExecutor(ShardedExecutorConfig cfg = {});

  /// View-based (zero-copy) entry point; owning callers convert
  /// implicitly. On a NUMA-aware pool each shard is dispatched to the
  /// node owning its device (device d → node d mod node_count), so a
  /// shard's staging and accumulation run next to the memory its worker
  /// first-touches; topology-blind pools keep the plain parallel_for.
  void spmm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan, sparse::DenseView x,
            sparse::DenseMutView y, runtime::Metrics* metrics) override;

  /// CSR×CSR across the device shards: the symbolic phase runs
  /// pool-parallel (it is cheap and deterministic), then each shard's
  /// contiguous permuted row range fills its output segments via
  /// spgemm::numeric_rows. reorder_aware shard planning reuses the
  /// paper's LSH/cluster reordering of the LEFT operand, so one device's
  /// rows share B-row working sets. Shard failure handling is identical
  /// to spmm(): dead device, plan_row_range re-cut across survivors;
  /// numeric ranges rewrite their segments completely, so re-execution
  /// is idempotent and the recovered C is bitwise-equal.
  void spgemm(runtime::WorkerPool& pool, const core::ExecutionPlan& plan, const CsrMatrix& a,
              const CsrMatrix& b, CsrMatrix& c, runtime::Metrics* metrics,
              const spgemm::SpgemmConfig& cfg) override;

  const ShardedExecutorConfig& config() const { return cfg_; }

 private:
  ShardedExecutorConfig cfg_;
  ShardPlanner planner_;
};

}  // namespace rrspmm::dist
