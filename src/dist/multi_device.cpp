#include "dist/multi_device.hpp"

#include <algorithm>

#include "fault/fault.hpp"

namespace rrspmm::dist {

namespace {

bool is_identity(const std::vector<index_t>& perm) {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<index_t>(i)) return false;
  }
  return true;
}

/// Renumbers the shard's original source indices to a dense [0, nnz)
/// range, preserving relative order. from_parts requires a bijection; the
/// shard's "source CSR" is the original value array restricted to its
/// rows, so rank order is the natural numbering.
void renumber_src(std::vector<aspt::Panel>& panels, std::vector<offset_t>& sparse_src) {
  std::vector<offset_t> sorted;
  for (const aspt::Panel& p : panels) {
    sorted.insert(sorted.end(), p.dense_src_idx.begin(), p.dense_src_idx.end());
  }
  sorted.insert(sorted.end(), sparse_src.begin(), sparse_src.end());
  std::sort(sorted.begin(), sorted.end());
  const auto rank = [&sorted](offset_t idx) {
    return static_cast<offset_t>(std::lower_bound(sorted.begin(), sorted.end(), idx) -
                                 sorted.begin());
  };
  for (aspt::Panel& p : panels) {
    for (offset_t& idx : p.dense_src_idx) idx = rank(idx);
  }
  for (offset_t& idx : sparse_src) idx = rank(idx);
}

}  // namespace

aspt::AsptMatrix extract_row_range(const aspt::AsptMatrix& a, index_t row_begin, index_t row_end) {
  if (row_begin < 0 || row_end > a.rows() || row_begin > row_end) {
    throw sparse::invalid_matrix("extract_row_range: range out of bounds");
  }
  const index_t n = row_end - row_begin;

  std::vector<aspt::Panel> panels;
  for (const aspt::Panel& p : a.panels()) {
    const index_t lo = std::max(row_begin, p.row_begin);
    const index_t hi = std::min(row_end, p.row_end);
    if (lo >= hi) continue;
    aspt::Panel q;
    q.row_begin = lo - row_begin;
    q.row_end = hi - row_begin;
    q.dense_cols = p.dense_cols;
    const auto first = static_cast<std::size_t>(lo - p.row_begin);
    const offset_t base = p.dense_rowptr[first];
    q.dense_rowptr.resize(static_cast<std::size_t>(hi - lo) + 1);
    for (std::size_t r = 0; r < q.dense_rowptr.size(); ++r) {
      q.dense_rowptr[r] = p.dense_rowptr[first + r] - base;
    }
    const auto lo_j = static_cast<std::size_t>(base);
    const auto hi_j = lo_j + static_cast<std::size_t>(q.dense_rowptr.back());
    q.dense_slot.assign(p.dense_slot.begin() + lo_j, p.dense_slot.begin() + hi_j);
    q.dense_val.assign(p.dense_val.begin() + lo_j, p.dense_val.begin() + hi_j);
    q.dense_src_idx.assign(p.dense_src_idx.begin() + lo_j, p.dense_src_idx.begin() + hi_j);
    panels.push_back(std::move(q));
  }

  const sparse::CsrMatrix& sp = a.sparse_part();
  const offset_t sp_base = sp.rowptr()[static_cast<std::size_t>(row_begin)];
  const offset_t sp_end = sp.rowptr()[static_cast<std::size_t>(row_end)];
  std::vector<offset_t> rowptr(static_cast<std::size_t>(n) + 1);
  for (std::size_t r = 0; r < rowptr.size(); ++r) {
    rowptr[r] = sp.rowptr()[static_cast<std::size_t>(row_begin) + r] - sp_base;
  }
  std::vector<index_t> colidx(sp.colidx().begin() + sp_base, sp.colidx().begin() + sp_end);
  std::vector<value_t> values(sp.values().begin() + sp_base, sp.values().begin() + sp_end);
  std::vector<offset_t> sparse_src(a.sparse_src_idx().begin() + sp_base,
                                   a.sparse_src_idx().begin() + sp_end);

  renumber_src(panels, sparse_src);
  sparse::CsrMatrix shard_sp(n, a.cols(), std::move(rowptr), std::move(colidx),
                             std::move(values));
  return aspt::AsptMatrix::from_parts(n, a.cols(), std::move(panels), std::move(shard_sp),
                                      std::move(sparse_src));
}

MultiDeviceResult simulate_spmm_sharded(const core::ExecutionPlan& plan,
                                        const core::ShardPlan& shard_plan, index_t k,
                                        const MultiDeviceConfig& cfg) {
  shard_plan.validate();
  if (shard_plan.mode != core::ShardMode::row) {
    throw sparse::invalid_matrix("simulate_spmm_sharded: shard plan is not row mode");
  }
  if (shard_plan.rows != plan.tiled.rows()) {
    throw sparse::invalid_matrix("simulate_spmm_sharded: shard plan does not match the plan");
  }
  const bool identity_order = is_identity(plan.sparse_order);
  const Interconnect icx(cfg.interconnect);

  MultiDeviceResult res;
  res.mode = shard_plan.mode;
  res.strategy = shard_plan.strategy;
  res.num_devices = shard_plan.num_devices;

  std::vector<double> x_payloads, y_payloads;
  std::vector<char> col_seen(static_cast<std::size_t>(plan.tiled.cols()));
  for (int d = 0; d < shard_plan.num_devices; ++d) {
    const core::RowShard& s = shard_plan.row_shards[static_cast<std::size_t>(d)];
    ShardSim ss;
    ss.device = d;
    if (s.rows() > 0) {
      fault::hit_nothrow(fault::points::kShardStraggler);
      fault::hit(fault::points::kShardInterconnect);
      const aspt::AsptMatrix shard = extract_row_range(plan.tiled, s.row_begin, s.row_end);

      std::vector<index_t> order;
      if (!identity_order) {
        order.reserve(static_cast<std::size_t>(s.rows()));
        for (index_t r : plan.sparse_order) {
          if (r >= s.row_begin && r < s.row_end) order.push_back(r - s.row_begin);
        }
      }
      ss.kernel = gpusim::simulate_spmm_aspt(shard, k, cfg.device,
                                             identity_order ? nullptr : &order);

      // Operand payload: the distinct X rows this shard reads — every
      // column on its panels' staging lists plus its sparse columns.
      std::fill(col_seen.begin(), col_seen.end(), 0);
      std::size_t distinct = 0;
      const auto touch = [&](index_t c) {
        if (!col_seen[static_cast<std::size_t>(c)]) {
          col_seen[static_cast<std::size_t>(c)] = 1;
          ++distinct;
        }
      };
      for (const aspt::Panel& p : shard.panels()) {
        for (index_t c : p.dense_cols) touch(c);
      }
      for (index_t c : shard.sparse_part().colidx()) touch(c);
      ss.x_bytes = static_cast<double>(distinct) * static_cast<double>(k) * 4.0;
      ss.y_bytes = static_cast<double>(s.rows()) * static_cast<double>(k) * 4.0;
    }
    res.max_kernel_s = std::max(res.max_kernel_s, ss.kernel.time_s);
    res.kernel_total_s += ss.kernel.time_s;
    x_payloads.push_back(ss.x_bytes);
    y_payloads.push_back(ss.y_bytes);
    res.comm_bytes += ss.x_bytes + ss.y_bytes;
    res.shards.push_back(std::move(ss));
  }

  res.scatter_s = icx.scatter_time(x_payloads);
  res.collect_s = icx.gather_time(y_payloads);
  res.makespan_s = res.scatter_s + res.max_kernel_s + res.collect_s;
  return res;
}

MultiDeviceResult simulate_spmm_sharded_cols(const sparse::CsrMatrix& m,
                                             const core::ShardPlan& shard_plan, index_t k,
                                             const MultiDeviceConfig& cfg) {
  shard_plan.validate();
  if (shard_plan.mode != core::ShardMode::column) {
    throw sparse::invalid_matrix("simulate_spmm_sharded_cols: shard plan is not column mode");
  }
  if (shard_plan.rows != m.rows() || shard_plan.cols != m.cols()) {
    throw sparse::invalid_matrix("simulate_spmm_sharded_cols: shard plan does not match m");
  }
  const Interconnect icx(cfg.interconnect);

  MultiDeviceResult res;
  res.mode = shard_plan.mode;
  res.strategy = shard_plan.strategy;
  res.num_devices = shard_plan.num_devices;

  const double partial_bytes =
      static_cast<double>(m.rows()) * static_cast<double>(k) * 4.0;
  std::vector<double> x_payloads;
  int active = 0;
  for (int d = 0; d < shard_plan.num_devices; ++d) {
    const core::ColShard& s = shard_plan.col_shards[static_cast<std::size_t>(d)];
    ShardSim ss;
    ss.device = d;
    if (s.nnz > 0) {
      fault::hit_nothrow(fault::points::kShardStraggler);
      fault::hit(fault::points::kShardInterconnect);
      // Column slice of m: same dimensions, only nonzeros with
      // col in [col_begin, col_end).
      std::vector<offset_t> rowptr(static_cast<std::size_t>(m.rows()) + 1, 0);
      std::vector<index_t> colidx;
      std::vector<value_t> values;
      colidx.reserve(static_cast<std::size_t>(s.nnz));
      values.reserve(static_cast<std::size_t>(s.nnz));
      for (index_t i = 0; i < m.rows(); ++i) {
        const auto cols = m.row_cols(i);
        const auto vals = m.row_vals(i);
        for (std::size_t j = 0; j < cols.size(); ++j) {
          if (cols[j] >= s.col_begin && cols[j] < s.col_end) {
            colidx.push_back(cols[j]);
            values.push_back(vals[j]);
          }
        }
        rowptr[static_cast<std::size_t>(i) + 1] = static_cast<offset_t>(colidx.size());
      }
      const sparse::CsrMatrix slice(m.rows(), m.cols(), std::move(rowptr), std::move(colidx),
                                    std::move(values));
      ss.kernel = gpusim::simulate_spmm_rowwise(slice, k, cfg.device);
      ss.x_bytes = static_cast<double>(s.cols()) * static_cast<double>(k) * 4.0;
      ss.y_bytes = partial_bytes;
      ++active;
    }
    res.max_kernel_s = std::max(res.max_kernel_s, ss.kernel.time_s);
    res.kernel_total_s += ss.kernel.time_s;
    x_payloads.push_back(ss.x_bytes);
    res.comm_bytes += ss.x_bytes;
    res.shards.push_back(std::move(ss));
  }

  res.scatter_s = icx.scatter_time(x_payloads);
  res.collect_s = icx.reduce_time(partial_bytes, active);
  if (active > 1) res.comm_bytes += static_cast<double>(active - 1) * partial_bytes;
  res.makespan_s = res.scatter_s + res.max_kernel_s + res.collect_s;
  return res;
}

}  // namespace rrspmm::dist
