#include "dist/shard_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sparse/stats.hpp"

namespace rrspmm::dist {

std::vector<offset_t> per_row_nnz(const aspt::AsptMatrix& tiled) {
  std::vector<offset_t> nnz(static_cast<std::size_t>(tiled.rows()), 0);
  for (const aspt::Panel& p : tiled.panels()) {
    for (index_t r = 0; r < p.rows(); ++r) {
      nnz[static_cast<std::size_t>(p.row_begin + r)] +=
          p.dense_rowptr[static_cast<std::size_t>(r) + 1] -
          p.dense_rowptr[static_cast<std::size_t>(r)];
    }
  }
  const sparse::CsrMatrix& sp = tiled.sparse_part();
  for (index_t i = 0; i < sp.rows(); ++i) {
    nnz[static_cast<std::size_t>(i)] += sp.row_nnz(i);
  }
  return nnz;
}

std::vector<index_t> row_columns(const aspt::AsptMatrix& tiled, index_t row) {
  std::vector<index_t> cols;
  // Panels partition the rows in order; find the one containing `row`.
  const auto& panels = tiled.panels();
  auto it = std::upper_bound(panels.begin(), panels.end(), row,
                             [](index_t r, const aspt::Panel& p) { return r < p.row_end; });
  if (it != panels.end() && row >= it->row_begin) {
    const aspt::Panel& p = *it;
    const auto r = static_cast<std::size_t>(row - p.row_begin);
    for (offset_t j = p.dense_rowptr[r]; j < p.dense_rowptr[r + 1]; ++j) {
      cols.push_back(p.dense_cols[static_cast<std::size_t>(p.dense_slot[static_cast<std::size_t>(j)])]);
    }
  }
  const auto sp_cols = tiled.sparse_part().row_cols(row);
  cols.insert(cols.end(), sp_cols.begin(), sp_cols.end());
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

namespace {

std::vector<offset_t> prefix_sum(const std::vector<offset_t>& weights) {
  std::vector<offset_t> prefix(weights.size() + 1, 0);
  for (std::size_t i = 0; i < weights.size(); ++i) prefix[i + 1] = prefix[i] + weights[i];
  return prefix;
}

/// Cut point of the d-th of n nnz-balanced shards over rows [lo, hi):
/// the smallest index r with prefix[r] >= prefix[lo] + range_nnz * d / n,
/// kept monotone against `floor_cut` and clamped to the range.
index_t balanced_cut(const std::vector<offset_t>& prefix, index_t lo, index_t hi, int d, int n,
                     index_t floor_cut) {
  const double base = static_cast<double>(prefix[static_cast<std::size_t>(lo)]);
  const double range_nnz =
      static_cast<double>(prefix[static_cast<std::size_t>(hi)]) - base;
  const double ideal = base + range_nnz * static_cast<double>(d) / static_cast<double>(n);
  const auto first = prefix.begin() + lo;
  const auto last = prefix.begin() + hi + 1;
  const auto it = std::lower_bound(first, last, static_cast<offset_t>(std::ceil(ideal)));
  auto cut = static_cast<index_t>(it - prefix.begin());
  cut = std::min(cut, hi);
  return std::max(cut, floor_cut);
}

/// One reorder_aware cut candidate: a panel boundary, its cumulative nnz
/// and the Jaccard similarity of the row pair it separates.
struct Boundary {
  index_t row = 0;
  offset_t cum = 0;
  double sim = 0.0;
};

}  // namespace

ShardPlan ShardPlanner::plan_rows(const core::ExecutionPlan& plan, int num_devices,
                                  ShardStrategy strategy) const {
  return plan_rows_impl(plan, 0, plan.tiled.rows(), num_devices, strategy, /*full_span=*/true);
}

ShardPlan ShardPlanner::plan_row_range(const core::ExecutionPlan& plan, index_t row_begin,
                                       index_t row_end, int num_devices,
                                       ShardStrategy strategy) const {
  if (row_begin < 0 || row_begin > row_end || row_end > plan.tiled.rows()) {
    throw sparse::invalid_matrix("ShardPlanner: row range outside the plan's row space");
  }
  return plan_rows_impl(plan, row_begin, row_end, num_devices, strategy, /*full_span=*/false);
}

ShardPlan ShardPlanner::plan_rows_impl(const core::ExecutionPlan& plan, index_t lo, index_t hi,
                                       int num_devices, ShardStrategy strategy,
                                       bool full_span) const {
  if (num_devices < 1) throw sparse::invalid_matrix("ShardPlanner: num_devices must be >= 1");
  const aspt::AsptMatrix& tiled = plan.tiled;
  const index_t rows = tiled.rows();
  const std::vector<offset_t> prefix = prefix_sum(per_row_nnz(tiled));
  const offset_t total =
      prefix[static_cast<std::size_t>(hi)] - prefix[static_cast<std::size_t>(lo)];

  std::vector<index_t> cuts(static_cast<std::size_t>(num_devices) + 1, lo);
  cuts.back() = hi;

  switch (strategy) {
    case ShardStrategy::contiguous:
      for (int d = 1; d < num_devices; ++d) {
        cuts[static_cast<std::size_t>(d)] = lo + static_cast<index_t>(
            static_cast<std::int64_t>(hi - lo) * d / num_devices);
      }
      break;

    case ShardStrategy::nnz_balanced:
      for (int d = 1; d < num_devices; ++d) {
        cuts[static_cast<std::size_t>(d)] =
            balanced_cut(prefix, lo, hi, d, num_devices, cuts[static_cast<std::size_t>(d) - 1]);
      }
      break;

    case ShardStrategy::reorder_aware: {
      // Candidates: panel boundaries strictly inside the range, scored by
      // the similarity of the row pair each one separates. A low score
      // means the cut falls between clusters.
      std::vector<Boundary> bounds;
      const auto& panels = tiled.panels();
      for (std::size_t pi = 0; pi + 1 < panels.size(); ++pi) {
        Boundary b;
        b.row = panels[pi].row_end;
        if (b.row <= lo || b.row >= hi) continue;
        b.cum = prefix[static_cast<std::size_t>(b.row)];
        const std::vector<index_t> above = row_columns(tiled, b.row - 1);
        const std::vector<index_t> below = row_columns(tiled, b.row);
        b.sim = sparse::jaccard({above.data(), above.size()}, {below.data(), below.size()});
        bounds.push_back(b);
      }

      const double base = static_cast<double>(prefix[static_cast<std::size_t>(lo)]);
      const double share = static_cast<double>(total) / static_cast<double>(num_devices);
      const double window = cfg_.balance_slack * share;
      for (int d = 1; d < num_devices; ++d) {
        const index_t prev = cuts[static_cast<std::size_t>(d) - 1];
        const double ideal = base + share * static_cast<double>(d);
        const Boundary* best = nullptr;
        bool best_in_window = false;
        for (const Boundary& b : bounds) {
          if (b.row <= prev) continue;
          const double dev = std::abs(static_cast<double>(b.cum) - ideal);
          const bool in_window = dev <= window;
          if (!best) {
            best = &b;
            best_in_window = in_window;
            continue;
          }
          const double best_dev = std::abs(static_cast<double>(best->cum) - ideal);
          bool better;
          if (in_window != best_in_window) {
            better = in_window;
          } else if (in_window) {
            // Inside the window rank by a balance-regularised seam
            // score. A pure lowest-sim rule would let a marginally
            // lower similarity (noise between two genuine seams) drag
            // the cut to the far edge of the window; the dev term keeps
            // near-equal seams ordered by balance while the large
            // seam-vs-mid-cluster similarity gap still dominates.
            const double score = b.sim + cfg_.seam_balance_weight * dev / share;
            const double best_score =
                best->sim + cfg_.seam_balance_weight * best_dev / share;
            better = score < best_score;
          } else {
            better = dev < best_dev;
          }
          if (better) {
            best = &b;
            best_in_window = in_window;
          }
        }
        // No boundary left: this shard takes the remainder and the rest
        // come out empty (more devices than panel seams).
        cuts[static_cast<std::size_t>(d)] = best ? best->row : hi;
      }
      break;
    }
  }

  ShardPlan sp;
  sp.mode = ShardMode::row;
  sp.strategy = strategy;
  sp.num_devices = num_devices;
  sp.rows = rows;
  sp.cols = tiled.cols();
  if (!full_span) {
    sp.span_begin = lo;
    sp.span_end = hi;
  }
  sp.row_shards.resize(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    core::RowShard& s = sp.row_shards[static_cast<std::size_t>(d)];
    s.row_begin = cuts[static_cast<std::size_t>(d)];
    s.row_end = cuts[static_cast<std::size_t>(d) + 1];
    s.nnz = prefix[static_cast<std::size_t>(s.row_end)] - prefix[static_cast<std::size_t>(s.row_begin)];
  }
  sp.validate();
  return sp;
}

ShardPlan ShardPlanner::plan_cols(const sparse::CsrMatrix& m, int num_devices,
                                  ShardStrategy strategy) const {
  if (num_devices < 1) throw sparse::invalid_matrix("ShardPlanner: num_devices must be >= 1");
  const index_t cols = m.cols();
  std::vector<offset_t> col_nnz(static_cast<std::size_t>(cols), 0);
  for (index_t c : m.colidx()) ++col_nnz[static_cast<std::size_t>(c)];
  const std::vector<offset_t> prefix = prefix_sum(col_nnz);

  std::vector<index_t> cuts(static_cast<std::size_t>(num_devices) + 1, 0);
  cuts.back() = cols;
  if (strategy == ShardStrategy::contiguous) {
    for (int d = 1; d < num_devices; ++d) {
      cuts[static_cast<std::size_t>(d)] =
          static_cast<index_t>(static_cast<std::int64_t>(cols) * d / num_devices);
    }
  } else {
    // reorder_aware has no column-side meaning (clusters are a row
    // notion); both remaining strategies balance nonzeros.
    strategy = ShardStrategy::nnz_balanced;
    for (int d = 1; d < num_devices; ++d) {
      cuts[static_cast<std::size_t>(d)] =
          balanced_cut(prefix, 0, cols, d, num_devices, cuts[static_cast<std::size_t>(d) - 1]);
    }
  }

  ShardPlan sp;
  sp.mode = ShardMode::column;
  sp.strategy = strategy;
  sp.num_devices = num_devices;
  sp.rows = m.rows();
  sp.cols = cols;
  sp.col_shards.resize(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    core::ColShard& s = sp.col_shards[static_cast<std::size_t>(d)];
    s.col_begin = cuts[static_cast<std::size_t>(d)];
    s.col_end = cuts[static_cast<std::size_t>(d) + 1];
    s.nnz = prefix[static_cast<std::size_t>(s.col_end)] - prefix[static_cast<std::size_t>(s.col_begin)];
  }
  sp.validate();
  return sp;
}

}  // namespace rrspmm::dist
