// Device-interconnect model.
//
// The single-device simulator (gpusim) argues entirely in bytes moved;
// multi-device execution adds a second byte ledger — dense operands
// scattered to devices, result shards gathered back, partial products
// reduced — and this model charges for it the same way gpusim charges
// for DRAM: latency + bytes / bandwidth per transfer, composed per
// collective. Two presets bracket real hardware: an NVLink-like mesh
// (every device reachable point-to-point, transfers to distinct devices
// proceed concurrently) and a PCIe-like tree (the root drives a limited
// number of links at a time, so collectives serialise into rounds).
#pragma once

#include <vector>

namespace rrspmm::dist {

struct InterconnectConfig {
  /// Per-direction point-to-point link bandwidth, GB/s.
  double link_gbps = 50.0;
  /// Fixed per-transfer setup latency (software + wire), seconds.
  double latency_s = 1.5e-6;
  /// Concurrent transfers the collective root can drive. 0 means
  /// unlimited (switched mesh: every device has its own link to the
  /// root); k > 0 serialises an n-device collective into ceil(n/k)
  /// rounds sharing k links.
  int root_fanout = 0;

  /// NVLink-like switched mesh (V100-class: 50 GB/s per direction).
  static InterconnectConfig nvlink() { return InterconnectConfig{}; }

  /// PCIe 3.0 x16 behind a host root complex: 12 GB/s, higher latency,
  /// two transfers in flight at the root.
  static InterconnectConfig pcie() {
    InterconnectConfig cfg;
    cfg.link_gbps = 12.0;
    cfg.latency_s = 5e-6;
    cfg.root_fanout = 2;
    return cfg;
  }
};

/// Time model for the three collectives sharded SpMM needs. All methods
/// are pure functions of the config; zero-byte, zero-device collectives
/// cost nothing.
class Interconnect {
 public:
  explicit Interconnect(InterconnectConfig cfg = {}) : cfg_(cfg) {}

  const InterconnectConfig& config() const { return cfg_; }

  /// One point-to-point transfer.
  double p2p_time(double bytes) const;

  /// Root sends a distinct payload to each device (X shards out, in row
  /// mode the per-device slices of the dense operand).
  double scatter_time(const std::vector<double>& per_device_bytes) const;

  /// Root sends the same payload to all n devices (unsliced broadcast;
  /// no hardware multicast, so this is a scatter of n equal payloads).
  double broadcast_time(double bytes, int n_devices) const;

  /// Root collects a distinct payload from each device (Y shards in).
  double gather_time(const std::vector<double>& per_device_bytes) const;

  /// Sums n equal-sized partial results into one (column mode's Y
  /// reduction): binary tree, ceil(log2 n) rounds of one transfer each.
  double reduce_time(double bytes, int n_devices) const;

 private:
  double rounds_time(double total_bytes, double max_bytes, int n_transfers) const;

  InterconnectConfig cfg_;
};

}  // namespace rrspmm::dist
