// Umbrella header for multi-device sharded execution: shard planner,
// interconnect model, multi-device simulator, sharded executor.
#pragma once

#include "dist/executor.hpp"
#include "dist/interconnect.hpp"
#include "dist/multi_device.hpp"
#include "dist/shard_planner.hpp"
