#include "simt/executor.hpp"

#include <deque>
#include <memory>

namespace rrspmm::simt {

namespace {

/// One resident block: its warps' coroutines plus the contexts they
/// reference (held at stable addresses for the coroutines' lifetime).
struct ResidentBlock {
  BlockState state;
  std::deque<WarpCtx> contexts;  // deque: stable element addresses
  std::vector<WarpTask> warps;
  bool active = false;
};

}  // namespace

void launch(const DeviceConfig& dev, const LaunchConfig& cfg, MemorySystem& mem,
            const WarpFactory& make_warp) {
  if (cfg.num_blocks == 0) return;
  const index_t resident =
      std::min<index_t>(cfg.num_blocks, static_cast<index_t>(dev.resident_blocks()));

  index_t next_block = 0;
  auto load_block = [&](ResidentBlock& slot) {
    if (next_block >= cfg.num_blocks) {
      slot.active = false;
      return;
    }
    const index_t block_id = next_block++;
    slot.state = BlockState{};
    slot.state.shared.assign(cfg.shared_floats, 0.0f);
    slot.state.live_warps = cfg.warps_per_block;
    slot.contexts.clear();
    slot.warps.clear();
    for (int w = 0; w < cfg.warps_per_block; ++w) {
      slot.contexts.push_back(WarpCtx{block_id, w, &mem, &slot.state});
      slot.warps.push_back(make_warp(block_id, w, slot.contexts.back()));
    }
    slot.active = true;
  };

  std::deque<ResidentBlock> slots(static_cast<std::size_t>(resident));
  for (auto& slot : slots) load_block(slot);
  index_t active_count = 0;
  for (const auto& slot : slots) active_count += slot.active ? 1 : 0;

  while (active_count > 0) {
    for (auto& slot : slots) {
      if (!slot.active) continue;
      // A block retires the turn it stops generating memory traffic with
      // every warp complete — the same rule the analytic schedulers use
      // ("no warp advanced"), so blocks of empty rows free their slot
      // within the turn and the interleavings match access for access.
      const std::uint64_t accesses_before = mem.counters().accesses;
      bool all_done = true;
      for (WarpTask& warp : slot.warps) {
        if (!warp.done()) {
          warp.resume();
          all_done &= warp.done();
        }
      }
      const bool did_access = mem.counters().accesses > accesses_before;
      if (all_done && !did_access) {  // block retired; slot takes the next
        load_block(slot);
        if (!slot.active) --active_count;
      }
    }
  }
}

}  // namespace rrspmm::simt
