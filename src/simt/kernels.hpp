// The paper's GPU kernels as warp programs for the functional SIMT
// executor. Each entry point both computes the result (into caller
// buffers) and returns the traffic counters its execution generated —
// the tests assert that the numbers match the OpenMP host kernels and
// that the counters match the analytic simulators in gpusim/traffic.hpp
// access for access.
//
// Byte accounting deliberately mirrors the analytic model (see
// traffic.hpp): CSR arrays and outputs are streamed, dense-row reads go
// through the recording L2, dense-tile reads hit shared memory. Warp
// programs yield between sparse nonzeros (and between staged dense
// columns), giving the exact round-robin interleaving the analytic
// simulators replay.
#pragma once

#include <vector>

#include "aspt/aspt.hpp"
#include "simt/executor.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"

namespace rrspmm::simt {

using aspt::AsptMatrix;
using sparse::CsrMatrix;
using sparse::DenseMatrix;

/// Row-wise SpMM: one warp per sparse row, warps_per_block rows per
/// block. y is overwritten.
TrafficCounters spmm_rowwise_simt(const CsrMatrix& s, const DenseMatrix& x, DenseMatrix& y,
                                  const DeviceConfig& dev,
                                  const std::vector<index_t>* row_order = nullptr);

/// ASpT SpMM: dense-tile kernel (one block per panel, staging dense
/// columns into block shared memory) followed by a row-wise kernel over
/// the sparse remainder, sharing one L2. y is overwritten.
TrafficCounters spmm_aspt_simt(const AsptMatrix& a, const DenseMatrix& x, DenseMatrix& y,
                               const DeviceConfig& dev,
                               const std::vector<index_t>* sparse_order = nullptr);

/// Row-wise SDDMM; `out` aligned with s's nonzero order.
TrafficCounters sddmm_rowwise_simt(const CsrMatrix& s, const DenseMatrix& x,
                                   const DenseMatrix& y, std::vector<value_t>& out,
                                   const DeviceConfig& dev,
                                   const std::vector<index_t>* row_order = nullptr);

/// ASpT SDDMM; `out` aligned with the CSR the tiling was built from.
TrafficCounters sddmm_aspt_simt(const AsptMatrix& a, const DenseMatrix& x, const DenseMatrix& y,
                                std::vector<value_t>& out, const DeviceConfig& dev,
                                const std::vector<index_t>* sparse_order = nullptr);

}  // namespace rrspmm::simt
