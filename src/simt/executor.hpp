// Functional SIMT executor — a small GPU execution model that *runs* the
// paper's kernels instead of just predicting their traffic.
//
// Kernels are written as warp programs: C++20 coroutines that perform
// real loads/stores through a recording MemorySystem and `co_await
// ctx.yield()` at their natural instruction boundaries (one sparse
// nonzero per step, matching the analytic model in gpusim/traffic.hpp).
// The executor schedules thread blocks over a resident window and
// resumes their warps round-robin — the same interleaving the analytic
// simulators assume — while the MemorySystem plays the L2/DRAM hierarchy
// and tallies the same counters as gpusim::SimResult.
//
// Role in the repository (DESIGN.md §2): the numerical results of a
// kernel run here must match the OpenMP host kernels, and its traffic
// counters must match the analytic simulators. The test suite asserts
// both, closing the loop between "what the kernels compute", "what the
// model predicts" and "what an execution actually touches".
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/lru_cache.hpp"
#include "sparse/types.hpp"

namespace rrspmm::simt {

using gpusim::DeviceConfig;

/// Traffic counters mirroring gpusim::SimResult's memory fields.
struct TrafficCounters {
  double dram_bytes = 0.0;
  double l2_bytes = 0.0;
  double shared_bytes = 0.0;
  std::uint64_t accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t shared_hits = 0;
};

/// Global-memory hierarchy: owns no data (kernels read/write caller
/// buffers directly) but records every access at the same granularity as
/// the analytic model — whole K-wide dense rows, identified by
/// (space, row).
class MemorySystem {
 public:
  MemorySystem(const DeviceConfig& dev, index_t k)
      : cache_(std::max<std::size_t>(1, dev.l2_bytes / (static_cast<std::size_t>(k) * 4))),
        row_bytes_(static_cast<double>(k) * 4.0) {}

  /// Records a K-wide dense-row read through L2; returns true on L2 hit.
  bool read_row(std::uint64_t space, index_t row) {
    ++counters_.accesses;
    counters_.l2_bytes += row_bytes_;
    const bool hit = cache_.access((space << 32) | static_cast<std::uint32_t>(row));
    if (hit) {
      ++counters_.l2_hits;
    } else {
      counters_.dram_bytes += row_bytes_;
    }
    return hit;
  }

  /// Records a K-wide shared-memory read (dense-tile access).
  void read_shared_row() {
    ++counters_.shared_hits;
    counters_.shared_bytes += row_bytes_;
  }

  /// Records streamed traffic (CSR arrays, output writes) that bypasses
  /// the reuse model.
  void stream_bytes(double bytes) { counters_.dram_bytes += bytes; }

  const TrafficCounters& counters() const { return counters_; }

 private:
  gpusim::LruKeyCache cache_;
  double row_bytes_;
  TrafficCounters counters_;
};

/// Warp coroutine. The promise starts suspended; the scheduler resumes it
/// step by step. Exceptions propagate to the scheduler's caller.
class WarpTask {
 public:
  struct promise_type {
    std::exception_ptr error;
    WarpTask get_return_object() {
      return WarpTask{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  WarpTask() = default;
  explicit WarpTask(std::coroutine_handle<promise_type> h) : handle_(h) {}
  WarpTask(WarpTask&& other) noexcept : handle_(other.handle_) { other.handle_ = {}; }
  WarpTask& operator=(WarpTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = other.handle_;
      other.handle_ = {};
    }
    return *this;
  }
  WarpTask(const WarpTask&) = delete;
  WarpTask& operator=(const WarpTask&) = delete;
  ~WarpTask() { destroy(); }

  bool done() const { return !handle_ || handle_.done(); }
  void resume() {
    handle_.resume();
    if (handle_.done() && handle_.promise().error) {
      std::rethrow_exception(handle_.promise().error);
    }
  }

 private:
  void destroy() {
    if (handle_) handle_.destroy();
  }
  std::coroutine_handle<promise_type> handle_;
};

/// Per-block state visible to its warps: a shared-memory float buffer
/// and a barrier counter.
struct BlockState {
  std::vector<float> shared;
  int barrier_generation = 0;
  int barrier_arrived = 0;
  int live_warps = 0;
};

/// Context handed to each warp program.
struct WarpCtx {
  index_t block_id = 0;          ///< block index within the launch
  int warp_in_block = 0;         ///< warp index within the block
  MemorySystem* mem = nullptr;
  BlockState* block = nullptr;

  /// Yield point: returns control to the scheduler (one "step").
  std::suspend_always yield() const { return {}; }

  /// Block barrier (__syncthreads at warp granularity). Usage pattern:
  ///
  ///   for (const int gen = ctx.arrive_barrier(); !ctx.barrier_open(gen);)
  ///     co_await ctx.yield();
  ///
  /// Every live warp of the block must participate, or the block
  /// deadlocks — the same contract as CUDA.
  int arrive_barrier() const {
    const int gen = block->barrier_generation + 1;
    if (++block->barrier_arrived == block->live_warps) {
      block->barrier_generation = gen;
      block->barrier_arrived = 0;
    }
    return gen;
  }
  bool barrier_open(int gen) const { return block->barrier_generation >= gen; }
};

/// A launch: `make_warp(block, warp_in_block, ctx)` creates each warp's
/// coroutine. Blocks are scheduled over dev.resident_blocks() slots;
/// within each scheduler turn every live warp of every resident block
/// advances one step.
struct LaunchConfig {
  index_t num_blocks = 0;
  int warps_per_block = 1;
  std::size_t shared_floats = 0;  ///< shared-memory buffer per block
};

using WarpFactory = std::function<WarpTask(index_t block, int warp, WarpCtx& ctx)>;

/// Runs the launch to completion. Throws whatever a warp program throws.
void launch(const DeviceConfig& dev, const LaunchConfig& cfg, MemorySystem& mem,
            const WarpFactory& make_warp);

}  // namespace rrspmm::simt
