#include "simt/kernels.hpp"

#include <algorithm>

namespace rrspmm::simt {

namespace {

constexpr std::uint64_t kSpaceX = 0;
constexpr std::uint64_t kSpaceY = 1;

double csr_stream_bytes(const CsrMatrix& s) {
  return static_cast<double>(s.nnz()) * 8.0 + static_cast<double>(s.rows() + 1) * 8.0;
}

/// Warp program: accumulate one sparse row into y (Alg 1's i-iteration).
/// `accumulate` controls += (ASpT sparse phase) vs overwrite.
WarpTask spmm_row_warp(WarpCtx& ctx, const CsrMatrix& s, const DenseMatrix& x, DenseMatrix& y,
                       index_t row, bool accumulate) {
  const index_t k = x.cols();
  std::vector<float> acc(static_cast<std::size_t>(k), 0.0f);
  const auto cols = s.row_cols(row);
  const auto vals = s.row_vals(row);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (j > 0) co_await ctx.yield();  // one nonzero per scheduler turn
    ctx.mem->read_row(kSpaceX, cols[j]);
    const float v = vals[j];
    const float* xr = x.row(cols[j]).data();
    for (index_t kk = 0; kk < k; ++kk) {
      acc[static_cast<std::size_t>(kk)] += v * xr[kk];
    }
  }
  float* yr = y.row(row).data();
  if (accumulate) {
    for (index_t kk = 0; kk < k; ++kk) yr[kk] += acc[static_cast<std::size_t>(kk)];
  } else {
    std::copy(acc.begin(), acc.end(), yr);
  }
}

/// Warp program: one panel's dense phase. A single loader warp stages
/// each dense column's X row into block shared memory (one column per
/// turn — the granularity the analytic model counts), then computes the
/// panel's dense contributions from shared.
WarpTask aspt_panel_warp(WarpCtx& ctx, const aspt::Panel& panel, const DenseMatrix& x,
                         DenseMatrix& y) {
  const index_t k = x.cols();
  for (std::size_t d = 0; d < panel.dense_cols.size(); ++d) {
    if (d > 0) co_await ctx.yield();
    ctx.mem->read_row(kSpaceX, panel.dense_cols[d]);
    const float* xr = x.row(panel.dense_cols[d]).data();
    std::copy(xr, xr + k, ctx.block->shared.data() + d * static_cast<std::size_t>(k));
  }
  // Compute from shared memory; no global traffic, so it piggybacks on
  // the last staging turn without perturbing the interleaving.
  for (index_t r = 0; r < panel.rows(); ++r) {
    float* yr = y.row(panel.row_begin + r).data();
    const offset_t lo = panel.dense_rowptr[static_cast<std::size_t>(r)];
    const offset_t hi = panel.dense_rowptr[static_cast<std::size_t>(r) + 1];
    for (offset_t j = lo; j < hi; ++j) {
      ctx.mem->read_shared_row();
      const float v = panel.dense_val[static_cast<std::size_t>(j)];
      const float* xr = ctx.block->shared.data() +
                        static_cast<std::size_t>(panel.dense_slot[static_cast<std::size_t>(j)]) *
                            static_cast<std::size_t>(k);
      for (index_t kk = 0; kk < k; ++kk) yr[kk] += v * xr[kk];
    }
  }
}

/// Warp program: one panel's SDDMM dense phase. Stage each dense column
/// (one per turn), then per dense-active row: fetch its Y row (one per
/// turn) and compute that row's dense dot products from shared memory.
WarpTask sddmm_panel_warp(WarpCtx& ctx, const aspt::Panel& panel, const DenseMatrix& x,
                          const DenseMatrix& y, std::vector<value_t>& out) {
  const index_t k = x.cols();
  bool first = true;
  for (std::size_t d = 0; d < panel.dense_cols.size(); ++d) {
    if (!first) co_await ctx.yield();
    first = false;
    ctx.mem->read_row(kSpaceX, panel.dense_cols[d]);
    const float* xr = x.row(panel.dense_cols[d]).data();
    std::copy(xr, xr + k, ctx.block->shared.data() + d * static_cast<std::size_t>(k));
  }
  for (index_t r = 0; r < panel.rows(); ++r) {
    const offset_t lo = panel.dense_rowptr[static_cast<std::size_t>(r)];
    const offset_t hi = panel.dense_rowptr[static_cast<std::size_t>(r) + 1];
    if (lo == hi) continue;
    if (!first) co_await ctx.yield();
    first = false;
    const index_t row = panel.row_begin + r;
    ctx.mem->read_row(kSpaceY, row);
    const float* yr = y.row(row).data();
    for (offset_t j = lo; j < hi; ++j) {
      ctx.mem->read_shared_row();
      const float* xr = ctx.block->shared.data() +
                        static_cast<std::size_t>(panel.dense_slot[static_cast<std::size_t>(j)]) *
                            static_cast<std::size_t>(k);
      float dot = 0.0f;
      for (index_t kk = 0; kk < k; ++kk) dot += yr[kk] * xr[kk];
      out[static_cast<std::size_t>(panel.dense_src_idx[static_cast<std::size_t>(j)])] =
          panel.dense_val[static_cast<std::size_t>(j)] * dot;
    }
  }
}

/// Warp program: SDDMM sparse remainder over one row, scattering through
/// the tiling's source-index map.
WarpTask sddmm_sparse_row_warp(WarpCtx& ctx, const CsrMatrix& sp,
                               const std::vector<offset_t>& src, const DenseMatrix& x,
                               const DenseMatrix& y, std::vector<value_t>& out, index_t row) {
  const index_t k = x.cols();
  const auto cols = sp.row_cols(row);
  const auto vals = sp.row_vals(row);
  const offset_t base = sp.rowptr()[static_cast<std::size_t>(row)];
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (j > 0) co_await ctx.yield();
    if (j == 0) ctx.mem->read_row(kSpaceY, row);
    ctx.mem->read_row(kSpaceX, cols[j]);
    const float* yr = y.row(row).data();
    const float* xr = x.row(cols[j]).data();
    float dot = 0.0f;
    for (index_t kk = 0; kk < k; ++kk) dot += yr[kk] * xr[kk];
    out[static_cast<std::size_t>(src[static_cast<std::size_t>(base) + j])] = vals[j] * dot;
  }
}

/// Warp program: SDDMM over one row — fetch the warp's Y row once, then
/// one dot product per nonzero.
WarpTask sddmm_row_warp(WarpCtx& ctx, const CsrMatrix& s, const DenseMatrix& x,
                        const DenseMatrix& y, std::vector<value_t>& out, index_t row) {
  const index_t k = x.cols();
  const auto cols = s.row_cols(row);
  const auto vals = s.row_vals(row);
  const offset_t base = s.rowptr()[static_cast<std::size_t>(row)];
  for (std::size_t j = 0; j < cols.size(); ++j) {
    if (j > 0) co_await ctx.yield();
    if (j == 0) ctx.mem->read_row(kSpaceY, row);  // Y row kept in registers
    ctx.mem->read_row(kSpaceX, cols[j]);
    const float* yr = y.row(row).data();
    const float* xr = x.row(cols[j]).data();
    float dot = 0.0f;
    for (index_t kk = 0; kk < k; ++kk) dot += yr[kk] * xr[kk];
    out[static_cast<std::size_t>(base) + j] = vals[j] * dot;
  }
}

/// Runs a warp-per-row launch over `s` (shared by the row-wise kernels).
template <typename MakeRowWarp>
void launch_rowwise(const DeviceConfig& dev, const CsrMatrix& s,
                    const std::vector<index_t>* order, MemorySystem& mem,
                    MakeRowWarp&& make_row_warp) {
  LaunchConfig lc;
  lc.warps_per_block = dev.warps_per_block;
  lc.num_blocks = (s.rows() + dev.warps_per_block - 1) /
                  static_cast<index_t>(dev.warps_per_block);
  launch(dev, lc, mem, [&](index_t block, int w, WarpCtx& ctx) -> WarpTask {
    const index_t pos = block * static_cast<index_t>(dev.warps_per_block) + static_cast<index_t>(w);
    const index_t row =
        pos < s.rows() ? (order ? (*order)[static_cast<std::size_t>(pos)] : pos) : -1;
    return make_row_warp(ctx, row);
  });
}

/// Trivial warp for out-of-range tail positions.
WarpTask idle_warp(WarpCtx&) { co_return; }

}  // namespace

TrafficCounters spmm_rowwise_simt(const CsrMatrix& s, const DenseMatrix& x, DenseMatrix& y,
                                  const DeviceConfig& dev,
                                  const std::vector<index_t>* row_order) {
  if (x.rows() != s.cols() || y.rows() != s.rows() || y.cols() != x.cols()) {
    throw sparse::invalid_matrix("spmm_rowwise_simt: shape mismatch");
  }
  MemorySystem mem(dev, x.cols());
  mem.stream_bytes(csr_stream_bytes(s));
  mem.stream_bytes(static_cast<double>(s.rows()) * static_cast<double>(x.cols()) * 4.0);
  launch_rowwise(dev, s, row_order, mem, [&](WarpCtx& ctx, index_t row) -> WarpTask {
    return row < 0 ? idle_warp(ctx) : spmm_row_warp(ctx, s, x, y, row, /*accumulate=*/false);
  });
  return mem.counters();
}

TrafficCounters spmm_aspt_simt(const AsptMatrix& a, const DenseMatrix& x, DenseMatrix& y,
                               const DeviceConfig& dev,
                               const std::vector<index_t>* sparse_order) {
  if (x.rows() != a.cols() || y.rows() != a.rows() || y.cols() != x.cols()) {
    throw sparse::invalid_matrix("spmm_aspt_simt: shape mismatch");
  }
  const index_t k = x.cols();
  y.fill(0.0f);
  MemorySystem mem(dev, k);

  // Phase 1: dense tiles — one block per panel that has dense columns
  // (mirroring the analytic scheduler's skip of empty panels).
  std::vector<const aspt::Panel*> dense_panels;
  std::size_t max_dense_cols = 0;
  for (const aspt::Panel& p : a.panels()) {
    if (!p.dense_cols.empty()) {
      dense_panels.push_back(&p);
      max_dense_cols = std::max(max_dense_cols, p.dense_cols.size());
    }
  }
  if (!dense_panels.empty()) {
    for (const aspt::Panel& p : a.panels()) {
      mem.stream_bytes(static_cast<double>(p.nnz()) * 8.0 +
                       static_cast<double>(p.rows() + 1) * 8.0 +
                       static_cast<double>(p.dense_cols.size()) * 4.0);
    }
    LaunchConfig lc;
    lc.num_blocks = static_cast<index_t>(dense_panels.size());
    lc.warps_per_block = 1;  // one staging/compute warp per panel
    lc.shared_floats = max_dense_cols * static_cast<std::size_t>(k);
    launch(dev, lc, mem, [&](index_t block, int /*w*/, WarpCtx& ctx) -> WarpTask {
      return aspt_panel_warp(ctx, *dense_panels[static_cast<std::size_t>(block)], x, y);
    });
  }

  // Phase 2: sparse remainder, accumulating into y.
  const CsrMatrix& sp = a.sparse_part();
  if (sp.nnz() > 0) {
    mem.stream_bytes(csr_stream_bytes(sp));
    launch_rowwise(dev, sp, sparse_order, mem, [&](WarpCtx& ctx, index_t row) -> WarpTask {
      return row < 0 ? idle_warp(ctx) : spmm_row_warp(ctx, sp, x, y, row, /*accumulate=*/true);
    });
  }

  // One output write per row, as in the analytic model.
  mem.stream_bytes(static_cast<double>(a.rows()) * static_cast<double>(k) * 4.0);
  return mem.counters();
}

TrafficCounters sddmm_aspt_simt(const AsptMatrix& a, const DenseMatrix& x, const DenseMatrix& y,
                                std::vector<value_t>& out, const DeviceConfig& dev,
                                const std::vector<index_t>* sparse_order) {
  if (y.rows() != a.rows() || x.rows() != a.cols() || x.cols() != y.cols()) {
    throw sparse::invalid_matrix("sddmm_aspt_simt: shape mismatch");
  }
  const index_t k = x.cols();
  out.assign(static_cast<std::size_t>(a.stats().nnz_total), value_t{0});
  MemorySystem mem(dev, k);

  std::vector<const aspt::Panel*> dense_panels;
  std::size_t max_dense_cols = 0;
  for (const aspt::Panel& p : a.panels()) {
    if (!p.dense_cols.empty()) {
      dense_panels.push_back(&p);
      max_dense_cols = std::max(max_dense_cols, p.dense_cols.size());
    }
  }
  if (!dense_panels.empty()) {
    for (const aspt::Panel& p : a.panels()) {
      mem.stream_bytes(static_cast<double>(p.nnz()) * 12.0 +
                       static_cast<double>(p.rows() + 1) * 8.0 +
                       static_cast<double>(p.dense_cols.size()) * 4.0);
    }
    LaunchConfig lc;
    lc.num_blocks = static_cast<index_t>(dense_panels.size());
    lc.warps_per_block = 1;
    lc.shared_floats = max_dense_cols * static_cast<std::size_t>(k);
    launch(dev, lc, mem, [&](index_t block, int /*w*/, WarpCtx& ctx) -> WarpTask {
      return sddmm_panel_warp(ctx, *dense_panels[static_cast<std::size_t>(block)], x, y, out);
    });
  }

  const CsrMatrix& sp = a.sparse_part();
  if (sp.nnz() > 0) {
    mem.stream_bytes(csr_stream_bytes(sp) + static_cast<double>(sp.nnz()) * 4.0);
    launch_rowwise(dev, sp, sparse_order, mem, [&](WarpCtx& ctx, index_t row) -> WarpTask {
      return row < 0 ? idle_warp(ctx)
                     : sddmm_sparse_row_warp(ctx, sp, a.sparse_src_idx(), x, y, out, row);
    });
  }
  return mem.counters();
}

TrafficCounters sddmm_rowwise_simt(const CsrMatrix& s, const DenseMatrix& x,
                                   const DenseMatrix& y, std::vector<value_t>& out,
                                   const DeviceConfig& dev,
                                   const std::vector<index_t>* row_order) {
  if (y.rows() != s.rows() || x.rows() != s.cols() || x.cols() != y.cols()) {
    throw sparse::invalid_matrix("sddmm_rowwise_simt: shape mismatch");
  }
  out.assign(static_cast<std::size_t>(s.nnz()), value_t{0});
  MemorySystem mem(dev, x.cols());
  mem.stream_bytes(csr_stream_bytes(s) + static_cast<double>(s.nnz()) * 4.0);
  launch_rowwise(dev, s, row_order, mem, [&](WarpCtx& ctx, index_t row) -> WarpTask {
    return row < 0 ? idle_warp(ctx) : sddmm_row_warp(ctx, s, x, y, out, row);
  });
  return mem.counters();
}

}  // namespace rrspmm::simt
