// Deterministic fault schedules.
//
// A FaultPlan is a seed plus a list of rules, each binding a fail point
// to an action (throw or stall) with a per-hit probability and hit-count
// bounds. Whether a given hit of a point triggers is a pure function of
// (plan seed, point name, hit index), so a schedule replays exactly from
// its seed: the set of triggering hit indices is identical across runs
// even when hits arrive from many threads (only which thread draws which
// index varies). Plans serialise to a compact one-line spec so a failing
// chaos run can be reproduced from its log.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rrspmm::fault {

/// What a triggered rule does at its fail point.
enum class FaultKind : std::uint8_t {
  throw_error = 0,  ///< throw fault::injected_fault
  stall = 1,        ///< sleep for FaultRule::stall_us microseconds
};

const char* to_string(FaultKind k);

struct FaultRule {
  std::string point;                    ///< fail-point name (see points.hpp)
  FaultKind kind = FaultKind::throw_error;
  double probability = 1.0;             ///< per-hit trigger probability
  std::uint64_t after_hits = 0;         ///< hits of the point to skip first
  std::uint64_t max_triggers = 0;       ///< total firings allowed; 0 = unlimited
  std::uint32_t stall_us = 0;           ///< stall duration (FaultKind::stall)

  bool operator==(const FaultRule&) const = default;
};

struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// One-line spec: `seed=<n>;<point>,<kind>[,p=<f>][,after=<n>][,max=<n>][,us=<n>];...`
  std::string to_string() const;

  /// Inverse of to_string. Throws std::invalid_argument on a malformed
  /// spec or an unknown kind.
  static FaultPlan parse(const std::string& spec);

  /// Deterministic chaos plan for the soak suite: always one guaranteed
  /// shard-failure rule (so failover actually exercises), plus a
  /// seed-dependent mix of build failures, chunk throws, and stalls on
  /// the race-window points. Every throw rule is capped (max_triggers),
  /// so any execution retried enough times eventually succeeds.
  static FaultPlan chaos(std::uint64_t seed);

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace rrspmm::fault
