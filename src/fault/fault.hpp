// Umbrella header for the fault-injection layer: fail-point registry,
// deterministic fault plans, canonical point names.
#pragma once

#include "fault/fail_point.hpp"
#include "fault/fault_plan.hpp"
#include "fault/points.hpp"
