// Canonical fail-point names.
//
// Every FailPoint compiled into the hot subsystems is listed here, so a
// FaultPlan can be written against stable identifiers and the docs have
// one place to enumerate what can be broken. A point marked "stall-only"
// sits at a call site that cannot unwind (a lock is held, or the throw
// would escape into a worker thread and terminate); those sites use
// fault::hit_nothrow, which silently ignores throw rules.
#pragma once

namespace rrspmm::fault::points {

/// WorkerPool: before a dequeued task runs. Stall-only (a throw would
/// escape the worker loop).
inline constexpr const char* kWorkerTask = "worker.task";

/// WorkerPool::parallel_for: before each loop chunk. A throw is captured
/// by the loop and rethrown in the caller, like any body exception.
inline constexpr const char* kWorkerChunk = "worker.chunk";

/// PlanCache: at the start of a plan build. A throw propagates through
/// the single-flight future to every waiter; the failed entry is dropped
/// so a retry rebuilds.
inline constexpr const char* kPlanCacheBuild = "plan_cache.build";

/// PlanCache: inside the eviction scan, under the cache lock. Stall-only
/// (widens eviction-storm races; a throw here would strand an in-flight
/// entry).
inline constexpr const char* kPlanCacheEvict = "plan_cache.evict";

/// Server::submit / submit_sddmm: between admission and the queue push —
/// the widest submit/stop race window. Stall-only (the request is
/// already counted in flight).
inline constexpr const char* kServerSubmit = "server.submit";

/// Server drain task: between popping a batch and executing it — the
/// stop-during-drain window. Stall-only.
inline constexpr const char* kServerDrain = "server.drain";

/// lsh signature stage: before each parallel signature chunk (classic
/// and one-permutation). A throw propagates out of compute_signatures;
/// core::reorder_rows catches it and degrades to the sequential path,
/// which carries no probes and produces the identical result.
inline constexpr const char* kPreprocSignature = "preproc.signature";

/// lsh scoring stage: before each parallel Jaccard-verification chunk.
/// Same degradation contract as preproc.signature.
inline constexpr const char* kPreprocScore = "preproc.score";

/// dist::ShardedExecutor: before a shard's kernel runs. A throw is a
/// shard kernel failure; the shard's device is marked dead and the row
/// range fails over to survivors.
inline constexpr const char* kShardExec = "shard.exec";

/// dist::ShardedExecutor / multi-device simulator: inside a shard's
/// execution. A stall is a slow straggler device; a throw is treated
/// like a kernel failure.
inline constexpr const char* kShardStraggler = "shard.straggler";

/// dist::ShardedExecutor: after a shard's kernel, before its result is
/// considered delivered. A throw models an interconnect timeout on the
/// result gather and triggers the same failover as a kernel failure.
inline constexpr const char* kShardInterconnect = "shard.interconnect";

/// spgemm: before a symbolic (row-counting) chunk runs. A throw
/// propagates out of the symbolic pass; the server's retry loop catches
/// it and ultimately degrades to the sequential sort-based multiply,
/// which runs with probes disabled and is bitwise-equal.
inline constexpr const char* kSpgemmSymbolic = "spgemm.symbolic";

/// spgemm: before a numeric (accumulation) row-range runs. Same
/// degradation contract as spgemm.symbolic; under ShardedExecutor the
/// throw is additionally a shard failure and triggers row-range
/// failover first.
inline constexpr const char* kSpgemmAccumulate = "spgemm.accumulate";

/// io: before a disk read (an mmap-path block access or a buffered
/// pread/refill) in the .rrsb reader, the Matrix Market chunk reader,
/// and spill-run read-back. A throw models a failed read: the mmap fast
/// path degrades permanently to buffered reads and retries; the
/// buffered path retries once, then propagates as io_error.
inline constexpr const char* kIoRead = "io.read";

/// io: before StreamingCsrBuilder writes a spill run. A throw models a
/// full or failing spill device: the write is retried once, and a
/// second failure degrades that run to staying in memory (the budget is
/// exceeded rather than data lost).
inline constexpr const char* kIoSpill = "io.spill";

}  // namespace rrspmm::fault::points
