#include "fault/fault_plan.hpp"

#include <sstream>
#include <stdexcept>

#include "fault/points.hpp"

namespace rrspmm::fault {

namespace {

/// Local splitmix64 so the chaos generator has no dependency on synth.
struct Mix {
  std::uint64_t x;
  std::uint64_t next() {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return next() % n; }
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }
};

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string tok;
  std::istringstream is(s);
  while (std::getline(is, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::throw_error: return "throw";
    case FaultKind::stall: return "stall";
  }
  return "?";
}

std::string FaultPlan::to_string() const {
  std::ostringstream os;
  // max_digits10: probabilities round-trip exactly, so a logged spec
  // replays the very schedule that failed, not a truncated cousin.
  os.precision(17);
  os << "seed=" << seed;
  for (const FaultRule& r : rules) {
    os << ";" << r.point << "," << fault::to_string(r.kind);
    if (r.probability < 1.0) os << ",p=" << r.probability;
    if (r.after_hits > 0) os << ",after=" << r.after_hits;
    if (r.max_triggers > 0) os << ",max=" << r.max_triggers;
    if (r.kind == FaultKind::stall) os << ",us=" << r.stall_us;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& part : split(spec, ';')) {
    if (part.rfind("seed=", 0) == 0) {
      plan.seed = std::stoull(part.substr(5));
      continue;
    }
    const std::vector<std::string> fields = split(part, ',');
    if (fields.size() < 2) throw std::invalid_argument("FaultPlan: malformed rule: " + part);
    FaultRule r;
    r.point = fields[0];
    if (fields[1] == "throw") {
      r.kind = FaultKind::throw_error;
    } else if (fields[1] == "stall") {
      r.kind = FaultKind::stall;
    } else {
      throw std::invalid_argument("FaultPlan: unknown kind: " + fields[1]);
    }
    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::string& f = fields[i];
      const auto eq = f.find('=');
      if (eq == std::string::npos) throw std::invalid_argument("FaultPlan: malformed field: " + f);
      const std::string key = f.substr(0, eq);
      const std::string val = f.substr(eq + 1);
      if (key == "p") {
        r.probability = std::stod(val);
      } else if (key == "after") {
        r.after_hits = std::stoull(val);
      } else if (key == "max") {
        r.max_triggers = std::stoull(val);
      } else if (key == "us") {
        r.stall_us = static_cast<std::uint32_t>(std::stoul(val));
      } else {
        throw std::invalid_argument("FaultPlan: unknown field: " + key);
      }
    }
    plan.rules.push_back(std::move(r));
  }
  return plan;
}

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  Mix mix{seed ^ 0xC4A0545EED5EEDULL};
  FaultPlan plan;
  plan.seed = seed;

  // Guaranteed shard failure, so every chaos run exercises failover (or,
  // when the cap empties all devices in one round, the retry path).
  {
    FaultRule r;
    r.point = points::kShardExec;
    r.kind = FaultKind::throw_error;
    r.probability = 1.0;
    r.after_hits = mix.below(3);
    r.max_triggers = 1 + mix.below(3);
    plan.rules.push_back(std::move(r));
  }

  // Seed-dependent extras. Every throw is capped so recovery can always
  // outlast the plan; race-window points get stalls, never throws.
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kPlanCacheBuild;
    r.kind = FaultKind::throw_error;
    r.probability = 0.3 + 0.4 * mix.unit();
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kWorkerChunk;
    r.kind = FaultKind::throw_error;
    r.probability = 0.02 + 0.05 * mix.unit();
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kShardInterconnect;
    r.kind = FaultKind::throw_error;
    r.probability = 0.5;
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  // Mid-preprocessing throws: the parallel signature/scoring stages
  // degrade to the sequential path (bitwise-equal), so these are capped
  // like every other throw and can never wedge a plan build — the
  // sequential fallback carries no probes.
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kPreprocSignature;
    r.kind = FaultKind::throw_error;
    r.probability = 0.4 + 0.4 * mix.unit();
    r.max_triggers = 1 + mix.below(3);
    plan.rules.push_back(std::move(r));
  }
  if (mix.below(3) == 0) {
    FaultRule r;
    r.point = points::kPreprocScore;
    r.kind = FaultKind::throw_error;
    r.probability = 0.5;
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  // SpGEMM probes: both phases degrade to the sequential sort-based
  // multiply (probes off, bitwise-equal), so throws here are capped like
  // the preprocessing ones and can never wedge a request.
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kSpgemmSymbolic;
    r.kind = FaultKind::throw_error;
    r.probability = 0.3 + 0.4 * mix.unit();
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kSpgemmAccumulate;
    r.kind = FaultKind::throw_error;
    r.probability = 0.2 + 0.3 * mix.unit();
    r.max_triggers = 1 + mix.below(3);
    plan.rules.push_back(std::move(r));
  }
  // io probes: both degrade (mmap -> buffered reads, spill -> stay in
  // memory) and the read retry bound is two attempts, so the caps below
  // guarantee forward progress for any schedule.
  if (mix.below(2) == 0) {
    FaultRule r;
    r.point = points::kIoRead;
    r.kind = FaultKind::throw_error;
    r.probability = 0.3 + 0.4 * mix.unit();
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  if (mix.below(3) == 0) {
    FaultRule r;
    r.point = points::kIoSpill;
    r.kind = FaultKind::throw_error;
    r.probability = 0.5;
    r.max_triggers = 1 + mix.below(2);
    plan.rules.push_back(std::move(r));
  }
  for (const char* p : {points::kServerDrain, points::kServerSubmit, points::kShardStraggler,
                        points::kPlanCacheEvict, points::kWorkerTask}) {
    if (mix.below(3) != 0) continue;
    FaultRule r;
    r.point = p;
    r.kind = FaultKind::stall;
    r.probability = 0.2 + 0.3 * mix.unit();
    r.max_triggers = 2 + mix.below(6);
    r.stall_us = static_cast<std::uint32_t>(200 + mix.below(800));
    plan.rules.push_back(std::move(r));
  }
  return plan;
}

}  // namespace rrspmm::fault
