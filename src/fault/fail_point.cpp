#include "fault/fail_point.hpp"

#include <chrono>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rrspmm::fault {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Pure trigger verdict for hit `index` of `point` under `probability`:
/// the schedule a seed encodes, independent of thread interleaving.
bool decide(std::uint64_t seed, std::string_view point, std::uint64_t index, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const std::uint64_t r = splitmix64(seed ^ fnv1a(point) ^ (index * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(r >> 11) * 0x1.0p-53 < probability;
}

}  // namespace

struct FaultRegistry::State {
  struct CompiledRule {
    FaultRule rule;
    std::atomic<std::uint64_t> hit_idx{0};
    std::atomic<std::uint64_t> triggered{0};
  };
  struct Point {
    std::atomic<std::uint64_t> hits{0};
    std::vector<CompiledRule*> rules;
  };

  FaultPlan plan;
  std::deque<CompiledRule> rules;  ///< stable addresses for the point table
  std::unordered_map<std::string, Point> by_point;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> faults{0};
  std::atomic<std::uint64_t> stalls{0};
};

FaultRegistry& FaultRegistry::instance() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(FaultPlan plan) {
  auto st = std::make_shared<State>();
  st->plan = std::move(plan);
  for (const FaultRule& r : st->plan.rules) {
    st->rules.emplace_back();
    st->rules.back().rule = r;
    st->by_point[r.point].rules.push_back(&st->rules.back());
  }
  {
    std::lock_guard<std::mutex> lk(m_);
    state_ = std::move(st);
  }
  detail::g_armed.store(true, std::memory_order_release);
}

void FaultRegistry::disarm() {
  detail::g_armed.store(false, std::memory_order_release);
  // state_ stays: its counters remain readable until the next arm().
}

bool FaultRegistry::armed() const { return detail::g_armed.load(std::memory_order_acquire); }

FaultPlan FaultRegistry::plan() const {
  std::lock_guard<std::mutex> lk(m_);
  return state_ ? state_->plan : FaultPlan{};
}

std::uint64_t FaultRegistry::hits() const {
  std::lock_guard<std::mutex> lk(m_);
  return state_ ? state_->hits.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultRegistry::faults_injected() const {
  std::lock_guard<std::mutex> lk(m_);
  return state_ ? state_->faults.load(std::memory_order_relaxed) : 0;
}

std::uint64_t FaultRegistry::stalls_injected() const {
  std::lock_guard<std::mutex> lk(m_);
  return state_ ? state_->stalls.load(std::memory_order_relaxed) : 0;
}

PointStats FaultRegistry::point_stats(std::string_view point) const {
  std::shared_ptr<State> st;
  {
    std::lock_guard<std::mutex> lk(m_);
    st = state_;
  }
  PointStats ps;
  if (!st) return ps;
  const auto it = st->by_point.find(std::string(point));
  if (it == st->by_point.end()) return ps;
  ps.hits = it->second.hits.load(std::memory_order_relaxed);
  for (const State::CompiledRule* r : it->second.rules) {
    ps.triggered += r->triggered.load(std::memory_order_relaxed);
  }
  return ps;
}

void FaultRegistry::on_hit(const char* point, bool allow_throw) {
  // Grab the state snapshot under the lock, then work lock-free: the
  // compiled table is immutable after arm(), only its atomics move.
  std::shared_ptr<State> st;
  {
    std::lock_guard<std::mutex> lk(m_);
    st = state_;
  }
  if (!st || !detail::g_armed.load(std::memory_order_acquire)) return;
  st->hits.fetch_add(1, std::memory_order_relaxed);

  const auto it = st->by_point.find(point);
  if (it == st->by_point.end()) return;
  it->second.hits.fetch_add(1, std::memory_order_relaxed);

  for (State::CompiledRule* r : it->second.rules) {
    // The hit index advances for every armed hit, triggering or not, so
    // the verdict sequence is a fixed function of the seed.
    const std::uint64_t h = r->hit_idx.fetch_add(1, std::memory_order_relaxed);
    if (h < r->rule.after_hits) continue;
    if (r->rule.kind == FaultKind::throw_error && !allow_throw) continue;
    if (!decide(st->plan.seed, r->rule.point, h, r->rule.probability)) continue;
    if (r->rule.max_triggers > 0) {
      // Claim a firing slot; give it back if the cap was already reached
      // (the cap is exact even under concurrent hits).
      const std::uint64_t t = r->triggered.fetch_add(1, std::memory_order_relaxed);
      if (t >= r->rule.max_triggers) {
        r->triggered.fetch_sub(1, std::memory_order_relaxed);
        continue;
      }
    } else {
      r->triggered.fetch_add(1, std::memory_order_relaxed);
    }

    if (r->rule.kind == FaultKind::stall) {
      st->stalls.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(r->rule.stall_us));
      continue;  // a stall does not shadow later rules on the point
    }
    st->faults.fetch_add(1, std::memory_order_relaxed);
    throw injected_fault(r->rule.point);
  }
}

}  // namespace rrspmm::fault
