// FailPoint registry: compiled in always, zero-cost when disarmed.
//
// Hot subsystems mark their interesting failure sites with
// fault::hit("name") (or hit_nothrow at sites that cannot unwind). When
// no FaultPlan is armed the call is a single relaxed atomic load of one
// process-wide flag — no lookup, no branch into the registry, nothing to
// contend on. Arming a plan flips the flag and installs a compiled rule
// table; hits then consult the plan and may throw injected_fault or
// stall the calling thread.
//
// Trigger decisions are deterministic: rule hit indices are allocated
// from per-rule atomic counters and each index's verdict is a pure
// function of (plan seed, point, index), so a seed replays the same
// fault schedule run after run (see fault_plan.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "fault/fault_plan.hpp"

namespace rrspmm::fault {

/// Thrown by an armed fail point when a throw rule fires. Recovery
/// layers catch this type specifically to count injected (as opposed to
/// organic) failures.
class injected_fault : public std::runtime_error {
 public:
  explicit injected_fault(std::string point)
      : std::runtime_error("injected fault at fail point: " + point), point_(std::move(point)) {}

  const std::string& point() const noexcept { return point_; }

 private:
  std::string point_;
};

/// Per-point observation counters (only points named by an armed plan's
/// rules are tracked; everything else folds into the global hit count).
struct PointStats {
  std::uint64_t hits = 0;       ///< armed hits of the point
  std::uint64_t triggered = 0;  ///< rule firings (throws + stalls)
};

class FaultRegistry {
 public:
  static FaultRegistry& instance();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Installs `plan` and starts injecting. Counters reset. Replaces any
  /// previously armed plan.
  void arm(FaultPlan plan);

  /// Stops injecting. The last plan's counters stay readable until the
  /// next arm().
  void disarm();

  bool armed() const;

  /// Copy of the armed (or most recently armed) plan; empty if none.
  FaultPlan plan() const;

  /// Hits observed while armed (all points, with or without rules).
  std::uint64_t hits() const;
  /// Throw rules fired.
  std::uint64_t faults_injected() const;
  /// Stall rules fired.
  std::uint64_t stalls_injected() const;
  PointStats point_stats(std::string_view point) const;

  /// Slow path behind fault::hit — call through the inline wrappers.
  void on_hit(const char* point, bool allow_throw);

 private:
  FaultRegistry() = default;
  struct State;

  mutable std::mutex m_;
  std::shared_ptr<State> state_;  ///< last armed state; kept after disarm for stats
};

namespace detail {
/// The one thing a disarmed fail point touches.
inline std::atomic<bool> g_armed{false};
}  // namespace detail

/// Marks a fail point. May throw injected_fault or stall when a plan is
/// armed; a single relaxed load when not.
inline void hit(const char* point) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    FaultRegistry::instance().on_hit(point, /*allow_throw=*/true);
  }
}

/// Marks a fail point at a site that cannot unwind (lock held, or the
/// exception would escape a worker thread). Throw rules are skipped;
/// stall rules still apply.
inline void hit_nothrow(const char* point) {
  if (detail::g_armed.load(std::memory_order_relaxed)) {
    FaultRegistry::instance().on_hit(point, /*allow_throw=*/false);
  }
}

/// RAII arm/disarm for tests: arms on construction, disarms on scope
/// exit.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan plan) { FaultRegistry::instance().arm(std::move(plan)); }
  ~ScopedFaultPlan() { FaultRegistry::instance().disarm(); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace rrspmm::fault
