// Candidate-pair generation by LSH banding (paper §3.2).
//
// The signature is split into siglen/bsize bands of bsize entries; two
// rows whose signatures agree on any whole band land in the same bucket
// of that band and become a candidate pair. Exact Jaccard similarity is
// then computed for every candidate (deduplicated) pair, and pairs below
// `min_similarity` are discarded — those are LSH false positives.
//
// Buckets are found by a sort-based group-by: one (band, band-hash, row)
// entry per live row per band, sorted (in parallel when a pool is
// supplied), then scanned for equal-(band, hash) runs. Each run is a
// bucket with members in ascending row order — the same member order the
// old per-band hash-map build produced — and the emitted pair set is
// deduplicated by a final sort+unique, so the output is identical to the
// legacy hash-map path while being deterministic under any thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/minhash.hpp"
#include "sparse/csr.hpp"

namespace rrspmm::lsh {

struct LshConfig {
  int siglen = 128;  ///< signature length (paper default)
  int bsize = 2;     ///< band size (paper default)
  /// Buckets larger than this are not expanded all-pairs; instead the
  /// bucket members are chained pairwise (i, i+1), which keeps them
  /// connectable by the clustering stage while bounding E (the paper
  /// assumes E ∝ N for the complexity argument).
  int bucket_cap = 64;
  /// Candidate pairs with exact Jaccard below this are dropped ("pairs
  /// that may have similarities larger than a threshold", §1).
  double min_similarity = 0.1;
  std::uint64_t seed = 0x5eedULL;
  /// Signature scheme: the paper's classic MinHash (default), or
  /// one-permutation hashing — ~siglen x cheaper signatures at slightly
  /// lower recall on short rows (see minhash.hpp and the parameter
  /// ablation bench).
  MinHashScheme scheme = MinHashScheme::kClassic;
};

struct CandidatePair {
  index_t a;          ///< smaller row id
  index_t b;          ///< larger row id
  double similarity;  ///< exact Jaccard of the two rows
};

/// Wall-clock breakdown of one reordering round's preprocessing phases,
/// the measured counterpart of the paper's Fig 12 lump figure. merge_ms
/// (the clustering stage) is filled by core::reorder_rows.
struct PhaseTimings {
  double sig_ms = 0.0;    ///< MinHash signature computation
  double band_ms = 0.0;   ///< banding group-by + pair dedup
  double score_ms = 0.0;  ///< exact Jaccard verification + filter
  double merge_ms = 0.0;  ///< hierarchical clustering (Alg 3)
};

/// Runs the full LSH pipeline: signatures -> banding -> dedup -> exact
/// similarity filter. The result is sorted by (a, b) for determinism.
/// With a pool, every phase fans out over the workers and the result is
/// bitwise identical to the sequential run (pool == nullptr); the
/// parallel signature/scoring chunks carry the preproc.signature /
/// preproc.score fault probes. Timings (sans merge_ms) are written to
/// `timings` when non-null.
std::vector<CandidatePair> find_candidate_pairs(const CsrMatrix& m, const LshConfig& cfg,
                                                runtime::WorkerPool* pool = nullptr,
                                                PhaseTimings* timings = nullptr);

/// Banding only: emits deduplicated row-id pairs without similarity
/// scoring (exposed for tests and for the ablation benches).
std::vector<std::pair<index_t, index_t>> band_pairs(const SignatureMatrix& sig,
                                                    const CsrMatrix& m, const LshConfig& cfg,
                                                    runtime::WorkerPool* pool = nullptr);

/// Banding over an explicit per-row liveness mask (non-zero = the row has
/// nonzeros) instead of a resident matrix — the out-of-core path
/// (src/io) collects the mask during its chunked signature pass, since
/// liveness is the only thing banding needs the matrix for. Returns the
/// deduplicated candidate pairs as packed (a << 32) | b keys with a < b,
/// sorted ascending — identical to the keys the resident path scores.
std::vector<std::uint64_t> band_pair_keys(const SignatureMatrix& sig,
                                          const std::vector<std::uint8_t>& live,
                                          const LshConfig& cfg,
                                          runtime::WorkerPool* pool = nullptr);

}  // namespace rrspmm::lsh
