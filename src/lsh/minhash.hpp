// MinHash signatures for Jaccard-similarity LSH (paper §3.2, following
// Leskovec/Rajaraman/Ullman, "Mining of Massive Datasets", ch. 3).
//
// Each sparse row is a set of column indices; signature entry k of row i
// is min over the row's columns c of h_k(c), where h_k is a 64-bit mixing
// hash salted by k. Pr[sig_k(A) == sig_k(B)] == J(A, B), so banding the
// signatures finds high-similarity pairs without the O(N^2) scan.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"

namespace rrspmm::runtime {
class WorkerPool;
}

namespace rrspmm::lsh {

using sparse::CsrMatrix;
using rrspmm::index_t;

/// Signature matrix: row-major, `siglen` entries per matrix row.
/// Rows with no nonzeros get the sentinel UINT32_MAX in every slot.
class SignatureMatrix {
 public:
  SignatureMatrix() = default;
  SignatureMatrix(index_t rows, int siglen)
      : rows_(rows), siglen_(siglen),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(siglen), UINT32_MAX) {}

  index_t rows() const { return rows_; }
  int siglen() const { return siglen_; }

  std::uint32_t* row(index_t i) {
    return data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(siglen_);
  }
  const std::uint32_t* row(index_t i) const {
    return data_.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(siglen_);
  }

  /// Fraction of equal entries between two signatures — the MinHash
  /// estimate of the Jaccard similarity of the underlying sets.
  double estimate_similarity(index_t a, index_t b) const;

 private:
  index_t rows_ = 0;
  int siglen_ = 0;
  std::vector<std::uint32_t> data_;
};

/// The salted column hash used for signature slot k. Exposed for tests.
std::uint32_t minhash_hash(index_t column, int k, std::uint64_t seed);

/// Computes the signature matrix — the "embarrassingly parallel" part of
/// the paper's preprocessing (§5.4). With a pool, the row range is
/// sharded over the workers in fixed chunks; each row's signature is
/// independent, so the result is bitwise identical to the sequential
/// loop (pool == nullptr) at any thread count. The parallel path carries
/// the preproc.signature fault probe per chunk.
SignatureMatrix compute_signatures(const CsrMatrix& m, int siglen, std::uint64_t seed,
                                   runtime::WorkerPool* pool = nullptr);

/// One-permutation MinHash with optimal densification (Shrivastava,
/// ICML'17): hashes each column ONCE, bins the hash into siglen buckets,
/// and keeps the per-bucket minimum; empty buckets borrow from a
/// pseudo-random occupied bucket so the collision probability stays an
/// unbiased Jaccard estimator. Cost drops from O(siglen * nnz) to
/// O(nnz + siglen) per row — the paper's future-work direction of
/// cutting the dominant preprocessing term. Slightly noisier for short
/// rows (fewer occupied buckets), which the ablation bench quantifies.
SignatureMatrix compute_signatures_oph(const CsrMatrix& m, int siglen, std::uint64_t seed,
                                       runtime::WorkerPool* pool = nullptr);

/// Chunk-fed variants for the out-of-core path (src/io): computes the
/// signatures of `slice` — a row-range slice of a larger matrix whose
/// local row 0 is global row `row_offset`, with GLOBAL column indices —
/// into rows [row_offset, row_offset + slice.rows()) of `sig` (whose
/// siglen() picks the signature length). Each row's signature depends
/// only on that row's columns, so feeding consecutive slices covering
/// [0, rows) produces a SignatureMatrix bitwise identical to the
/// resident compute_signatures / compute_signatures_oph call.
void compute_signatures_into(const CsrMatrix& slice, index_t row_offset, std::uint64_t seed,
                             SignatureMatrix& sig, runtime::WorkerPool* pool = nullptr);
void compute_signatures_oph_into(const CsrMatrix& slice, index_t row_offset, std::uint64_t seed,
                                 SignatureMatrix& sig, runtime::WorkerPool* pool = nullptr);

/// Signature scheme selector used by LshConfig.
enum class MinHashScheme {
  kClassic,  ///< siglen independent hashes per column (paper's method)
  kOnePermutation,  ///< one hash per column + densification
};

}  // namespace rrspmm::lsh
