#include "lsh/minhash.hpp"

#include <algorithm>

#include "fault/fault.hpp"
#include "runtime/worker_pool.hpp"

namespace rrspmm::lsh {

namespace {

// xxhash-style 64-bit avalanche; full 64-bit mixing then truncation gives
// well-distributed 32-bit hashes for any column-index range.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

// Per-row signature bodies, shared verbatim by the sequential loop and
// the pool-sharded loop: each row's signature depends only on that row's
// columns, so any partition of the row range produces the identical
// SignatureMatrix bit for bit.
void classic_signature_row(const CsrMatrix& m, index_t i, int siglen, std::uint64_t seed,
                           std::uint32_t* s) {
  for (index_t c : m.row_cols(i)) {
    for (int k = 0; k < siglen; ++k) {
      s[k] = std::min(s[k], minhash_hash(c, k, seed));
    }
  }
}

void oph_signature_row(const CsrMatrix& m, index_t i, std::uint32_t bins, std::uint64_t seed,
                       std::uint32_t* s) {
  if (m.row_nnz(i) == 0) return;  // keep the sentinel for empty rows
  // One hash per column; the top bits pick the bucket, the full hash is
  // the candidate minimum.
  for (index_t c : m.row_cols(i)) {
    const std::uint64_t h =
        mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) << 1) ^ seed);
    const auto bucket = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(h >> 32)) * bins) >> 32);
    const auto v = static_cast<std::uint32_t>(h);
    s[bucket] = std::min(s[bucket], v);
  }
  // Optimal densification: every empty bucket copies the value of a
  // pseudo-randomly chosen bucket, probing with per-(bucket, attempt)
  // hashes until an occupied one is found. The probe sequence depends
  // only on (bucket, attempt, seed), never on the row, so two rows with
  // identical occupied buckets densify identically — preserving the
  // collision <=> similarity property.
  for (std::uint32_t b = 0; b < bins; ++b) {
    if (s[b] != UINT32_MAX) continue;
    std::uint64_t attempt = 0;
    std::uint32_t probe = b;
    while (s[probe] == UINT32_MAX) {
      ++attempt;
      probe = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(mix64(
               (static_cast<std::uint64_t>(b) << 24) ^ attempt ^ (seed * 0x9E3779B97F4A7C15ULL)))) *
           bins) >>
          32);
      if (attempt > 64 && s[probe] == UINT32_MAX) {
        // Degenerate row (extremely few occupied buckets): fall back to
        // a linear scan for the next occupied bucket.
        for (std::uint32_t d = 1; d < bins; ++d) {
          const std::uint32_t cand = (b + d) % bins;
          if (s[cand] != UINT32_MAX) {
            probe = cand;
            break;
          }
        }
      }
    }
    s[b] = s[probe];
  }
}

// Shards the row range over the pool in fixed chunks. Each chunk writes a
// disjoint slice of the signature matrix, so there are no write conflicts
// and the result matches the sequential loop exactly. The fault probe
// covers each chunk; a throw unwinds through parallel_for to the caller.
template <typename RowFn>
void for_each_row(const CsrMatrix& m, runtime::WorkerPool* pool, RowFn row_fn) {
  const index_t rows = m.rows();
  if (pool == nullptr || pool->size() <= 1 || rows < 2) {
    for (index_t i = 0; i < rows; ++i) row_fn(i);
    return;
  }
  const auto chunk = std::max<std::size_t>(
      64, static_cast<std::size_t>(rows) / (static_cast<std::size_t>(pool->size()) * 4));
  const std::size_t nchunks = (static_cast<std::size_t>(rows) + chunk - 1) / chunk;
  pool->parallel_for(nchunks, [&](std::size_t c) {
    fault::hit(fault::points::kPreprocSignature);
    const auto lo = static_cast<index_t>(c * chunk);
    const auto hi = static_cast<index_t>(std::min<std::size_t>((c + 1) * chunk,
                                                               static_cast<std::size_t>(rows)));
    for (index_t i = lo; i < hi; ++i) row_fn(i);
  });
}

}  // namespace

std::uint32_t minhash_hash(index_t column, int k, std::uint64_t seed) {
  const std::uint64_t key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(column)) << 20) ^
                            static_cast<std::uint64_t>(static_cast<unsigned>(k)) ^ (seed << 1);
  return static_cast<std::uint32_t>(mix64(key));
}

double SignatureMatrix::estimate_similarity(index_t a, index_t b) const {
  const std::uint32_t* sa = row(a);
  const std::uint32_t* sb = row(b);
  int eq = 0;
  for (int k = 0; k < siglen_; ++k) eq += (sa[k] == sb[k]);
  return siglen_ > 0 ? static_cast<double>(eq) / siglen_ : 0.0;
}

SignatureMatrix compute_signatures_oph(const CsrMatrix& m, int siglen, std::uint64_t seed,
                                       runtime::WorkerPool* pool) {
  if (siglen <= 0) throw sparse::invalid_matrix("siglen must be positive");
  SignatureMatrix sig(m.rows(), siglen);
  compute_signatures_oph_into(m, 0, seed, sig, pool);
  return sig;
}

SignatureMatrix compute_signatures(const CsrMatrix& m, int siglen, std::uint64_t seed,
                                   runtime::WorkerPool* pool) {
  if (siglen <= 0) throw sparse::invalid_matrix("siglen must be positive");
  SignatureMatrix sig(m.rows(), siglen);
  compute_signatures_into(m, 0, seed, sig, pool);
  return sig;
}

void compute_signatures_into(const CsrMatrix& slice, index_t row_offset, std::uint64_t seed,
                             SignatureMatrix& sig, runtime::WorkerPool* pool) {
  if (row_offset < 0 || row_offset + slice.rows() > sig.rows()) {
    throw sparse::invalid_matrix("signature slice out of range");
  }
  const int siglen = sig.siglen();
  for_each_row(slice, pool,
               [&](index_t i) { classic_signature_row(slice, i, siglen, seed, sig.row(row_offset + i)); });
}

void compute_signatures_oph_into(const CsrMatrix& slice, index_t row_offset, std::uint64_t seed,
                                 SignatureMatrix& sig, runtime::WorkerPool* pool) {
  if (row_offset < 0 || row_offset + slice.rows() > sig.rows()) {
    throw sparse::invalid_matrix("signature slice out of range");
  }
  const auto bins = static_cast<std::uint32_t>(sig.siglen());
  for_each_row(slice, pool,
               [&](index_t i) { oph_signature_row(slice, i, bins, seed, sig.row(row_offset + i)); });
}

}  // namespace rrspmm::lsh
