#include "lsh/candidates.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "sparse/stats.hpp"

namespace rrspmm::lsh {

namespace {

std::uint64_t pair_key(index_t a, index_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

// FNV-1a over the band's signature entries; bucket keys only need to be
// collision-resistant enough that unrelated bands rarely merge.
std::uint64_t band_hash(const std::uint32_t* sig, int bsize, int band) {
  std::uint64_t h = 1469598103934665603ULL ^ static_cast<std::uint64_t>(static_cast<unsigned>(band));
  for (int k = 0; k < bsize; ++k) {
    h ^= sig[k];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::vector<std::pair<index_t, index_t>> band_pairs(const SignatureMatrix& sig,
                                                    const CsrMatrix& m, const LshConfig& cfg) {
  if (cfg.bsize <= 0 || cfg.siglen <= 0 || cfg.siglen % cfg.bsize != 0) {
    throw sparse::invalid_matrix("LshConfig: siglen must be a positive multiple of bsize");
  }
  const int nbands = cfg.siglen / cfg.bsize;
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::pair<index_t, index_t>> pairs;

  std::unordered_map<std::uint64_t, std::vector<index_t>> buckets;
  for (int band = 0; band < nbands; ++band) {
    buckets.clear();
    for (index_t i = 0; i < sig.rows(); ++i) {
      if (m.row_nnz(i) == 0) continue;  // empty rows have no similarity to exploit
      buckets[band_hash(sig.row(i) + band * cfg.bsize, cfg.bsize, band)].push_back(i);
    }
    for (auto& [key, members] : buckets) {
      (void)key;
      if (members.size() < 2) continue;
      auto emit = [&](index_t x, index_t y) {
        if (x > y) std::swap(x, y);
        if (seen.insert(pair_key(x, y)).second) pairs.emplace_back(x, y);
      };
      if (static_cast<int>(members.size()) <= cfg.bucket_cap) {
        for (std::size_t i = 0; i < members.size(); ++i) {
          for (std::size_t j = i + 1; j < members.size(); ++j) emit(members[i], members[j]);
        }
      } else {
        // Oversized bucket: chain members so clustering can still connect
        // them, without the quadratic pair blow-up.
        for (std::size_t i = 0; i + 1 < members.size(); ++i) emit(members[i], members[i + 1]);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::vector<CandidatePair> find_candidate_pairs(const CsrMatrix& m, const LshConfig& cfg) {
  const SignatureMatrix sig = cfg.scheme == MinHashScheme::kOnePermutation
                                  ? compute_signatures_oph(m, cfg.siglen, cfg.seed)
                                  : compute_signatures(m, cfg.siglen, cfg.seed);
  const auto raw = band_pairs(sig, m, cfg);

  std::vector<CandidatePair> out(raw.size());
  // Exact verification is independent per pair — the second
  // embarrassingly parallel loop of the preprocessing.
#ifdef RRSPMM_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 256)
#endif
  for (std::int64_t idx = 0; idx < static_cast<std::int64_t>(raw.size()); ++idx) {
    const auto [a, b] = raw[static_cast<std::size_t>(idx)];
    out[static_cast<std::size_t>(idx)] =
        CandidatePair{a, b, sparse::jaccard(m.row_cols(a), m.row_cols(b))};
  }
  std::erase_if(out, [&](const CandidatePair& p) { return p.similarity < cfg.min_similarity; });
  return out;
}

}  // namespace rrspmm::lsh
