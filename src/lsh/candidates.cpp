#include "lsh/candidates.hpp"

#include <algorithm>
#include <chrono>

#include "fault/fault.hpp"
#include "runtime/parallel_sort.hpp"
#include "runtime/worker_pool.hpp"
#include "sparse/stats.hpp"

namespace rrspmm::lsh {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::uint64_t pair_key(index_t a, index_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

// FNV-1a over the band's signature entries; bucket keys only need to be
// collision-resistant enough that unrelated bands rarely merge.
std::uint64_t band_hash(const std::uint32_t* sig, int bsize, int band) {
  std::uint64_t h = 1469598103934665603ULL ^ static_cast<std::uint64_t>(static_cast<unsigned>(band));
  for (int k = 0; k < bsize; ++k) {
    h ^= sig[k];
    h *= 1099511628211ULL;
  }
  return h;
}

// One entry per (live row, band); sorting by (band, hash, row) makes each
// bucket an adjacent run with members in ascending row order — the same
// member order the per-band hash-map insertion produced.
struct BandEntry {
  std::uint64_t hash;
  index_t band;
  index_t row;
};

struct BandEntryLess {
  bool operator()(const BandEntry& x, const BandEntry& y) const {
    if (x.band != y.band) return x.band < y.band;
    if (x.hash != y.hash) return x.hash < y.hash;
    return x.row < y.row;
  }
};

/// Per-row liveness mask of a resident matrix: banding needs nothing
/// else from it (empty rows have no similarity to exploit).
std::vector<std::uint8_t> liveness(const SignatureMatrix& sig, const CsrMatrix& m) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(sig.rows()), 0);
  for (index_t i = 0; i < sig.rows(); ++i) {
    mask[static_cast<std::size_t>(i)] = m.row_nnz(i) > 0 ? 1 : 0;
  }
  return mask;
}

/// Packed-key banding over a resident matrix; see the public mask
/// overload for the algorithm. Packed keys instead of std::pair keep the
/// hot emit/dedup/score loops on flat 8-byte values.
std::vector<std::uint64_t> band_pair_keys(const SignatureMatrix& sig, const CsrMatrix& m,
                                          const LshConfig& cfg, runtime::WorkerPool* pool) {
  return lsh::band_pair_keys(sig, liveness(sig, m), cfg, pool);
}

}  // namespace

std::vector<std::uint64_t> band_pair_keys(const SignatureMatrix& sig,
                                          const std::vector<std::uint8_t>& mask,
                                          const LshConfig& cfg, runtime::WorkerPool* pool) {
  if (cfg.bsize <= 0 || cfg.siglen <= 0 || cfg.siglen % cfg.bsize != 0) {
    throw sparse::invalid_matrix("LshConfig: siglen must be a positive multiple of bsize");
  }
  if (mask.size() != static_cast<std::size_t>(sig.rows())) {
    throw sparse::invalid_matrix("liveness mask size must match signature rows");
  }
  const int nbands = cfg.siglen / cfg.bsize;

  std::vector<index_t> live;
  live.reserve(static_cast<std::size_t>(sig.rows()));
  for (index_t i = 0; i < sig.rows(); ++i) {
    if (mask[static_cast<std::size_t>(i)] != 0) live.push_back(i);
  }

  std::vector<BandEntry> entries(live.size() * static_cast<std::size_t>(nbands));
  const auto fill_rows = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      const index_t i = live[j];
      const std::uint32_t* s = sig.row(i);
      BandEntry* e = entries.data() + j * static_cast<std::size_t>(nbands);
      for (int band = 0; band < nbands; ++band) {
        e[band] = BandEntry{band_hash(s + band * cfg.bsize, cfg.bsize, band),
                            static_cast<index_t>(band), i};
      }
    }
  };
  if (pool != nullptr && pool->size() > 1 && live.size() >= 128) {
    const std::size_t chunk = std::max<std::size_t>(64, live.size() / (pool->size() * 4));
    const std::size_t nchunks = (live.size() + chunk - 1) / chunk;
    pool->parallel_for(nchunks, [&](std::size_t c) {
      fill_rows(c * chunk, std::min((c + 1) * chunk, live.size()));
    });
  } else {
    fill_rows(0, live.size());
  }

  runtime::parallel_sort(entries, BandEntryLess{}, pool);

  // Group scan, two passes. Pass one sizes the emit exactly from the
  // bucket statistics (a bucket of s members yields s*(s-1)/2 pairs, or
  // s-1 when chained past the cap) so pass two never reallocates.
  const auto group_end = [&](std::size_t g) {
    std::size_t e = g + 1;
    while (e < entries.size() && entries[e].band == entries[g].band &&
           entries[e].hash == entries[g].hash) {
      ++e;
    }
    return e;
  };
  std::size_t npairs = 0;
  for (std::size_t g = 0; g < entries.size();) {
    const std::size_t e = group_end(g);
    const std::size_t sz = e - g;
    if (sz >= 2) {
      npairs += static_cast<int>(sz) <= cfg.bucket_cap ? sz * (sz - 1) / 2 : sz - 1;
    }
    g = e;
  }

  std::vector<std::uint64_t> keys;
  keys.reserve(npairs);
  for (std::size_t g = 0; g < entries.size();) {
    const std::size_t e = group_end(g);
    const std::size_t sz = e - g;
    if (sz >= 2) {
      // Members are in ascending row order, so a < b without a swap.
      if (static_cast<int>(sz) <= cfg.bucket_cap) {
        for (std::size_t i = g; i < e; ++i) {
          for (std::size_t j = i + 1; j < e; ++j) {
            keys.push_back(pair_key(entries[i].row, entries[j].row));
          }
        }
      } else {
        // Oversized bucket: chain members so clustering can still connect
        // them, without the quadratic pair blow-up.
        for (std::size_t i = g; i + 1 < e; ++i) {
          keys.push_back(pair_key(entries[i].row, entries[i + 1].row));
        }
      }
    }
    g = e;
  }

  runtime::parallel_sort(keys, std::less<std::uint64_t>{}, pool);
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::pair<index_t, index_t>> band_pairs(const SignatureMatrix& sig,
                                                    const CsrMatrix& m, const LshConfig& cfg,
                                                    runtime::WorkerPool* pool) {
  const std::vector<std::uint64_t> keys = band_pair_keys(sig, m, cfg, pool);
  std::vector<std::pair<index_t, index_t>> pairs;
  pairs.reserve(keys.size());
  for (const std::uint64_t k : keys) {
    pairs.emplace_back(static_cast<index_t>(k >> 32),
                       static_cast<index_t>(k & 0xFFFFFFFFULL));
  }
  return pairs;
}

std::vector<CandidatePair> find_candidate_pairs(const CsrMatrix& m, const LshConfig& cfg,
                                                runtime::WorkerPool* pool,
                                                PhaseTimings* timings) {
  auto t0 = Clock::now();
  const SignatureMatrix sig = cfg.scheme == MinHashScheme::kOnePermutation
                                  ? compute_signatures_oph(m, cfg.siglen, cfg.seed, pool)
                                  : compute_signatures(m, cfg.siglen, cfg.seed, pool);
  if (timings) timings->sig_ms = ms_since(t0);

  t0 = Clock::now();
  const std::vector<std::uint64_t> keys = band_pair_keys(sig, m, cfg, pool);
  if (timings) timings->band_ms = ms_since(t0);

  // Exact verification is independent per pair — the second
  // embarrassingly parallel loop of the preprocessing. Fixed-size chunks
  // write disjoint slices of a preallocated output, so the parallel fill
  // is bitwise identical to the sequential one.
  t0 = Clock::now();
  std::vector<CandidatePair> out(keys.size());
  const auto score_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t idx = lo; idx < hi; ++idx) {
      const auto a = static_cast<index_t>(keys[idx] >> 32);
      const auto b = static_cast<index_t>(keys[idx] & 0xFFFFFFFFULL);
      out[idx] = CandidatePair{a, b, sparse::jaccard(m.row_cols(a), m.row_cols(b))};
    }
  };
  if (pool != nullptr && pool->size() > 1 && keys.size() >= 1024) {
    constexpr std::size_t kChunk = 512;
    const std::size_t nchunks = (keys.size() + kChunk - 1) / kChunk;
    pool->parallel_for(nchunks, [&](std::size_t c) {
      fault::hit(fault::points::kPreprocScore);
      score_range(c * kChunk, std::min((c + 1) * kChunk, keys.size()));
    });
  } else {
    score_range(0, keys.size());
  }
  std::erase_if(out, [&](const CandidatePair& p) { return p.similarity < cfg.min_similarity; });
  if (timings) timings->score_ms = ms_since(t0);
  return out;
}

}  // namespace rrspmm::lsh
