#include "synth/corpus.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "synth/generators.hpp"
#include "synth/rng.hpp"

namespace rrspmm::synth {

namespace {

std::string two_digits(int i) {
  return (i < 10 ? "0" : "") + std::to_string(i);
}

index_t scaled(double scale, index_t base) {
  const double v = static_cast<double>(base) * scale;
  return v < 64 ? index_t{64} : checked_index(static_cast<std::int64_t>(v));
}

offset_t scaled_nnz(double scale, offset_t base) {
  const double v = static_cast<double>(base) * scale;
  return v < 256 ? offset_t{256} : static_cast<offset_t>(v);
}

}  // namespace

CorpusConfig corpus_config_from_env() {
  CorpusConfig cfg;
  if (const char* n = std::getenv("RRSPMM_CORPUS_N")) cfg.count = std::atoi(n);
  if (const char* s = std::getenv("RRSPMM_SCALE")) cfg.scale = std::atof(s);
  if (const char* s = std::getenv("RRSPMM_SEED")) cfg.seed = static_cast<std::uint64_t>(std::atoll(s));
  if (cfg.count < 1) cfg.count = 1;
  if (cfg.scale <= 0.0) cfg.scale = 1.0;
  return cfg;
}

std::vector<CorpusEntry> build_corpus(const CorpusConfig& cfg) {
  std::vector<CorpusEntry> corpus;
  corpus.reserve(static_cast<std::size_t>(cfg.count));

  // Family cycle. Index-dependent parameter jitter makes every instance
  // distinct even within a family.
  int i = 0;
  while (static_cast<int>(corpus.size()) < cfg.count) {
    const std::uint64_t seed = cfg.seed + static_cast<std::uint64_t>(i) * 7919ULL;
    const int variant = i / 10;  // grows matrices as the corpus grows
    const double grow = 1.0 + 0.2 * variant;
    const double s = cfg.scale * grow;
    switch (i % 14) {
      case 0: {  // scattered clustered — the paper's motivating population
        ClusteredParams p;
        p.rows = scaled(s, 10240);
        p.cols = scaled(s, 10240);
        p.num_groups = static_cast<index_t>(48 + 16 * (variant % 5));
        p.group_cols = static_cast<index_t>(96 + 24 * (variant % 4));
        p.row_nnz = static_cast<index_t>(16 + 4 * (variant % 4));
        p.noise_nnz = static_cast<index_t>(variant % 3);
        p.scatter = true;
        corpus.push_back({"clustered_scatter_" + two_digits(i), "clustered_scatter",
                          clustered_rows(p, seed)});
        break;
      }
      case 1: {  // shuffled banded — latent band structure, hidden order
        const index_t n = scaled(s, 12288);
        corpus.push_back({"banded_shuffled_" + two_digits(i), "banded_shuffled",
                          shuffle_rows(banded(n, static_cast<index_t>(6 + variant % 6),
                                              0.6 + 0.05 * (variant % 4), seed),
                                       seed ^ 0xABCDULL)});
        break;
      }
      case 2: {  // well-clustered (contiguous groups) — Fig 7a regime
        ClusteredParams p;
        p.rows = scaled(s, 10240);
        p.cols = scaled(s, 10240);
        p.num_groups = static_cast<index_t>(64 + 16 * (variant % 4));
        p.group_cols = static_cast<index_t>(72 + 12 * (variant % 4));
        p.row_nnz = static_cast<index_t>(20 + 2 * (variant % 5));
        p.noise_nnz = 0;
        p.scatter = false;
        corpus.push_back({"clustered_contig_" + two_digits(i), "clustered_contig",
                          clustered_rows(p, seed)});
        break;
      }
      case 3: {  // banded in natural order — also well clustered
        const index_t n = scaled(s, 12288);
        corpus.push_back({"banded_" + two_digits(i), "banded",
                          banded(n, static_cast<index_t>(8 + variant % 8),
                                 0.55 + 0.05 * (variant % 5), seed)});
        break;
      }
      case 4: {  // RMAT power-law graph
        const index_t sc = static_cast<index_t>(14 + (variant % 2));
        const offset_t nnz =
            scaled_nnz(cfg.scale * grow, static_cast<offset_t>(16) * (offset_t{1} << sc));
        corpus.push_back({"rmat_" + two_digits(i), "rmat", rmat(sc, nnz, seed)});
        break;
      }
      case 5: {  // Chung–Lu power-law
        const index_t n = scaled(s, 12288);
        corpus.push_back({"chung_lu_" + two_digits(i), "chung_lu",
                          chung_lu(n, n, 14.0 + 2.0 * (variant % 4),
                                   2.1 + 0.2 * (variant % 4), seed)});
        break;
      }
      case 6: {  // Erdős–Rényi — scattered, unclusterable
        const index_t n = scaled(s, 12288);
        corpus.push_back({"erdos_renyi_" + two_digits(i), "erdos_renyi",
                          erdos_renyi(n, n, static_cast<offset_t>(n) * (10 + variant % 6), seed)});
        break;
      }
      case 7: {  // scattered clustered with more noise
        ClusteredParams p;
        p.rows = scaled(s, 8192);
        p.cols = scaled(s, 12288);
        p.num_groups = static_cast<index_t>(32 + 16 * (variant % 4));
        p.group_cols = static_cast<index_t>(128 + 32 * (variant % 3));
        p.row_nnz = static_cast<index_t>(24 + 4 * (variant % 3));
        p.noise_nnz = static_cast<index_t>(2 + variant % 4);
        p.scatter = true;
        corpus.push_back({"clustered_noisy_" + two_digits(i), "clustered_noisy",
                          clustered_rows(p, seed)});
        break;
      }
      case 8: {  // weakly clustered — partial reuse only (the paper's
                 // mid-bucket population: 10-50% speedups)
        ClusteredParams p;
        p.rows = scaled(s, 10240);
        p.cols = scaled(s, 12288);
        p.num_groups = static_cast<index_t>(96 + 32 * (variant % 3));
        p.group_cols = static_cast<index_t>(40 + 8 * (variant % 3));
        p.row_nnz = static_cast<index_t>(12 + 2 * (variant % 3));
        p.noise_nnz = static_cast<index_t>(8 + 2 * (variant % 3));
        p.scatter = true;
        corpus.push_back({"clustered_weak_" + two_digits(i), "clustered_weak",
                          clustered_rows(p, seed)});
        break;
      }
      case 9: {  // medium clusters: groups visible but diluted by noise
        ClusteredParams p;
        p.rows = scaled(s, 10240);
        p.cols = scaled(s, 10240);
        p.num_groups = static_cast<index_t>(128 + 32 * (variant % 3));
        p.group_cols = static_cast<index_t>(64 + 8 * (variant % 4));
        p.row_nnz = static_cast<index_t>(16 + 2 * (variant % 3));
        p.noise_nnz = static_cast<index_t>(4 + variant % 4);
        p.scatter = true;
        corpus.push_back({"clustered_medium_" + two_digits(i), "clustered_medium",
                          clustered_rows(p, seed)});
        break;
      }
      case 10: {  // graph adjacency destined for squaring (A·A): square,
                  // disjoint per-group column blocks, scattered row order
                  // — the SpGEMM effectiveness family
        ClusteredParams p;
        p.rows = scaled(s, 10240);
        p.cols = p.rows;
        p.num_groups = static_cast<index_t>(48 + 16 * (variant % 4));
        p.group_cols = static_cast<index_t>(p.cols / p.num_groups);
        p.row_nnz = static_cast<index_t>(14 + 2 * (variant % 4));
        p.noise_nnz = static_cast<index_t>(variant % 2);
        p.scatter = true;
        p.disjoint_pools = true;
        corpus.push_back({"adj_square_" + two_digits(i), "adj_square",
                          clustered_rows(p, seed)});
        break;
      }
      case 11: {  // sampled GNN frontier: community blocks + global hubs.
                  // Block width ~40-48 columns at fanout 16-22 keeps
                  // intra-community Jaccard high enough for the LSH
                  // rounds to recover the communities.
        GnnFrontierParams p;
        p.nodes = scaled(s, 12288);
        p.communities = static_cast<index_t>(p.nodes / (40 + 4 * (variant % 3)));
        p.fanout = static_cast<index_t>(16 + 2 * (variant % 4));
        p.hub_cols = static_cast<index_t>(16 + 8 * (variant % 3));
        p.hub_prob = 0.1 + 0.05 * (variant % 3);
        corpus.push_back({"gnn_frontier_" + two_digits(i), "gnn_frontier",
                          gnn_frontier(p, seed)});
        break;
      }
      case 12: {  // tall-skinny scRNA-like expression matrix: cells >>
                  // genes, scattered cell types, housekeeping hubs. Pool
                  // sizes derive from the actual gene count so the family
                  // stays well-formed at any corpus scale.
        ScrnaParams p;
        p.cells = scaled(s, 24576);
        p.genes = scaled(s, 2048);
        p.cell_types = static_cast<index_t>(12 + 4 * (variant % 3));
        p.housekeeping = std::max<index_t>(4, p.genes / 42);
        p.markers_per_type = std::max<index_t>(8, p.genes / 21);
        p.expr_per_cell = std::max<index_t>(8, p.genes / 64);
        p.housekeeping_prob = 0.25 + 0.05 * (variant % 3);
        corpus.push_back({"scrna_cells_" + two_digits(i), "scrna_cells",
                          scrna_cells(p, seed)});
        break;
      }
      case 13: {  // DLMC-like magnitude-pruned weights: unstructured,
                  // column-popularity skew only
        DlmcParams p;
        p.rows = scaled(s, 6144);
        p.cols = scaled(s, 2048);
        p.density = 0.012 + 0.004 * (variant % 3);
        p.skew = 2.0 + 0.5 * (variant % 3);
        corpus.push_back({"dlmc_pruned_" + two_digits(i), "dlmc_pruned",
                          dlmc_pruned(p, seed)});
        break;
      }
      default: break;
    }
    ++i;
  }
  return corpus;
}

std::vector<CorpusEntry> build_test_corpus() {
  std::vector<CorpusEntry> corpus;
  ClusteredParams scat;
  scat.rows = 512;
  scat.cols = 512;
  scat.num_groups = 16;
  scat.group_cols = 32;
  scat.row_nnz = 10;
  scat.noise_nnz = 1;
  scat.scatter = true;
  corpus.push_back({"t_clustered_scatter", "clustered_scatter", clustered_rows(scat, 11)});

  ClusteredParams contig = scat;
  contig.scatter = false;
  contig.noise_nnz = 0;
  corpus.push_back({"t_clustered_contig", "clustered_contig", clustered_rows(contig, 12)});

  corpus.push_back({"t_banded", "banded", banded(512, 5, 0.7, 13)});
  corpus.push_back({"t_banded_shuffled", "banded_shuffled",
                    shuffle_rows(banded(512, 5, 0.7, 14), 15)});
  corpus.push_back({"t_er", "erdos_renyi", erdos_renyi(512, 512, 4096, 16)});
  corpus.push_back({"t_rmat", "rmat", rmat(9, 8192, 17)});
  corpus.push_back({"t_chung_lu", "chung_lu", chung_lu(512, 512, 12.0, 2.3, 18)});
  corpus.push_back({"t_diagonal", "diagonal", diagonal(512)});

  ClusteredParams adj = scat;
  adj.noise_nnz = 0;
  adj.disjoint_pools = true;  // 16 groups * 32 cols == 512: exact blocks
  corpus.push_back({"t_adj_square", "adj_square", clustered_rows(adj, 19)});

  GnnFrontierParams gnn;
  gnn.nodes = 512;
  gnn.communities = 16;
  gnn.fanout = 8;
  gnn.hub_cols = 8;
  gnn.hub_prob = 0.2;
  corpus.push_back({"t_gnn_frontier", "gnn_frontier", gnn_frontier(gnn, 20)});

  // Every test-corpus matrix has 512 rows (asserted by the integration
  // suite); scrna stays tall-skinny via the narrow gene dimension.
  ScrnaParams scrna;
  scrna.cells = 512;
  scrna.genes = 128;
  scrna.cell_types = 8;
  scrna.markers_per_type = 24;
  scrna.housekeeping = 8;
  scrna.expr_per_cell = 10;
  corpus.push_back({"t_scrna", "scrna_cells", scrna_cells(scrna, 21)});

  DlmcParams dlmc;
  dlmc.rows = 512;
  dlmc.cols = 256;
  dlmc.density = 0.04;
  corpus.push_back({"t_dlmc", "dlmc_pruned", dlmc_pruned(dlmc, 22)});
  return corpus;
}

}  // namespace rrspmm::synth
