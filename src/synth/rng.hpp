// Deterministic pseudo-random number generation for the synthetic corpus.
//
// xoshiro256** seeded via SplitMix64 — small, fast, reproducible across
// platforms and compilers (std::mt19937 distributions are not
// implementation-stable, and reproducibility of the corpus is part of the
// experiment definition).
#pragma once

#include <cstdint>

namespace rrspmm::synth {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& w : s_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      w = z ^ (z >> 31);
    }
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift reduction;
  /// the bias is < 2^-64 per draw, negligible for corpus generation.
  std::uint64_t next_below(std::uint64_t n) {
    __extension__ using u128 = unsigned __int128;
    return static_cast<std::uint64_t>((static_cast<u128>(next_u64()) * static_cast<u128>(n)) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [-1, 1).
  float next_signed_float() {
    return static_cast<float>(next_double() * 2.0 - 1.0);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace rrspmm::synth
