// Synthetic sparse matrix generators.
//
// Substitution note (see DESIGN.md §2): the paper evaluates on 1084
// matrices from SuiteSparse and the Network Repository — real scientific
// meshes, power-law graphs, and data-mining matrices. Those cannot be
// downloaded here, so this module generates a corpus spanning the same
// structural axes the paper's analysis depends on:
//
//  * how much latent row similarity exists (clusterability), and
//  * how much of it is visible to *consecutive-row* tiling (ASpT) before
//    any reordering.
//
// The pivotal generator is `clustered_rows` + `shuffle_rows`: matrices
// whose rows fall into groups with overlapping column sets, scattered
// randomly through the row order. ASpT alone finds nothing; the paper's
// row-reordering recovers the groups. That is exactly the population of
// "351 of 1084 matrices with <1% of nonzeros in dense tiles".
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace rrspmm::synth {

using sparse::CsrMatrix;
using rrspmm::index_t;
using rrspmm::offset_t;

/// Erdős–Rényi: each of `nnz_target` entries drawn uniformly (duplicates
/// combined, so actual nnz may be slightly lower). The paper's "too
/// scattered" regime (Fig 7b generalised): no two rows are similar.
CsrMatrix erdos_renyi(index_t rows, index_t cols, offset_t nnz_target, std::uint64_t seed);

/// RMAT/Kronecker power-law graph (a=0.57,b=0.19,c=0.19,d=0.05 by
/// default, the Graph500 parameterisation). Produces skewed degree
/// distributions typical of the web/social graphs in the Network
/// Repository.
struct RmatParams {
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c
};
CsrMatrix rmat(index_t scale, offset_t nnz_target, std::uint64_t seed, RmatParams p = {});

/// Chung–Lu graph with power-law expected degrees (exponent `gamma`,
/// typically 2.1–3.0). Hub columns shared by many rows create natural
/// row similarity concentrated on the hubs.
CsrMatrix chung_lu(index_t rows, index_t cols, double avg_degree, double gamma, std::uint64_t seed);

/// Banded matrix: each row has nonzeros within `bandwidth` of the
/// diagonal with density `fill`. FEM/stencil-like; consecutive rows are
/// already similar — the paper's Fig 7a regime where reordering is
/// skipped.
CsrMatrix banded(index_t n, index_t bandwidth, double fill, std::uint64_t seed);

/// Pure diagonal matrix (paper Fig 7b): zero inter-row reuse no matter
/// the order.
CsrMatrix diagonal(index_t n);

/// Rows organised in `num_groups` latent groups. Each group owns a pool
/// of `group_cols` columns; a row in the group samples `row_nnz` columns
/// from its pool (plus `noise_nnz` uniform noise columns). With
/// `scatter=false` groups occupy consecutive row ranges (well-clustered,
/// Fig 7a); with `scatter=true` group membership is randomly interleaved
/// — the motivating case for row-reordering.
struct ClusteredParams {
  index_t rows = 4096;
  index_t cols = 4096;
  index_t num_groups = 64;
  index_t group_cols = 96;
  index_t row_nnz = 24;
  index_t noise_nnz = 2;
  bool scatter = true;
  /// With `disjoint_pools` group g owns exactly the contiguous columns
  /// [g*group_cols, (g+1)*group_cols) instead of a random sample of the
  /// full range (requires num_groups*group_cols <= cols). Random pools
  /// overlap pairwise, which blurs the per-group column working set;
  /// disjoint pools make it exact — the configuration multi-device
  /// partitioning experiments cut on.
  bool disjoint_pools = false;
};
CsrMatrix clustered_rows(const ClusteredParams& p, std::uint64_t seed);

/// Sampled-GNN-frontier adjacency: a square nodes×nodes graph whose
/// nodes belong to `communities`. Each node draws `fanout` neighbours,
/// mostly from its own community's contiguous column block, but with
/// probability `hub_prob` from a small set of `hub_cols` global hub
/// columns — the popular nodes every sampled frontier touches. Node
/// (row) order is scattered, so consecutive rows share nothing until a
/// reorderer recovers the communities. Squaring such an adjacency
/// (A·A, the two-hop frontier) is the SpGEMM workload whose B-row reuse
/// the left-operand reordering concentrates.
struct GnnFrontierParams {
  index_t nodes = 4096;
  index_t communities = 64;
  index_t fanout = 12;
  index_t hub_cols = 16;
  double hub_prob = 0.15;
};
CsrMatrix gnn_frontier(const GnnFrontierParams& p, std::uint64_t seed);

/// Tall-skinny single-cell expression matrix: cells × genes with
/// cells >> genes. Each cell belongs to one of `cell_types` latent types
/// and expresses mostly its type's marker-gene program, plus a small set
/// of housekeeping genes (the first `housekeeping` columns) every cell
/// expresses — the global hub columns of this family. Values are small
/// positive counts. Cell (row) order is scattered, so the types are
/// invisible to consecutive-row tiling until a reorderer groups the
/// cells — and the extreme aspect ratio stresses exactly the code paths
/// square generators never do (row blocks vastly outnumber column
/// range, signatures much wider than rows are long).
struct ScrnaParams {
  index_t cells = 24576;
  index_t genes = 2048;
  index_t cell_types = 16;
  /// Marker genes per type, sampled from the non-housekeeping columns
  /// (pools may overlap, like related cell lineages). Requires
  /// markers_per_type <= genes - housekeeping.
  index_t markers_per_type = 96;
  index_t housekeeping = 48;
  index_t expr_per_cell = 32;  ///< expressed genes (nonzeros) per cell
  double housekeeping_prob = 0.3;
};
CsrMatrix scrna_cells(const ScrnaParams& p, std::uint64_t seed);

/// Magnitude-pruned dense-layer weights in the style of the DLMC
/// corpus: unstructured sparsity at a fixed density, but with skewed
/// column (output-neuron) popularity — important neurons keep many
/// incoming weights, unimportant ones few. Rows share the popular
/// columns, giving moderate, hub-concentrated similarity with no block
/// structure at all: the regime between clustered (reordering wins big)
/// and Erdős–Rényi (nothing to find).
struct DlmcParams {
  index_t rows = 6144;
  index_t cols = 2048;
  double density = 0.015;  ///< surviving-weight fraction per row
  /// Column popularity exponent: a column is drawn as cols * u^skew for
  /// uniform u, so skew 1 is uniform and larger values concentrate mass
  /// on the low columns.
  double skew = 2.5;
};
CsrMatrix dlmc_pruned(const DlmcParams& p, std::uint64_t seed);

/// Random row permutation of an existing matrix — destroys consecutive-row
/// locality while preserving the latent structure a reorderer can recover.
CsrMatrix shuffle_rows(const CsrMatrix& m, std::uint64_t seed);

}  // namespace rrspmm::synth
