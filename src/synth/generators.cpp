#include "synth/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/permute.hpp"
#include "synth/rng.hpp"

namespace rrspmm::synth {

using sparse::CooMatrix;

CsrMatrix erdos_renyi(index_t rows, index_t cols, offset_t nnz_target, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(rows, cols);
  coo.reserve(nnz_target);
  for (offset_t k = 0; k < nnz_target; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(cols)));
    coo.add(r, c, rng.next_signed_float());
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix rmat(index_t scale, offset_t nnz_target, std::uint64_t seed, RmatParams p) {
  Rng rng(seed);
  const index_t n = index_t{1} << scale;
  CooMatrix coo(n, n);
  coo.reserve(nnz_target);
  for (offset_t k = 0; k < nnz_target; ++k) {
    index_t r = 0, c = 0;
    for (index_t bit = 0; bit < scale; ++bit) {
      const double u = rng.next_double();
      r <<= 1;
      c <<= 1;
      if (u < p.a) {
        // upper-left: nothing to add
      } else if (u < p.a + p.b) {
        c |= 1;
      } else if (u < p.a + p.b + p.c) {
        r |= 1;
      } else {
        r |= 1;
        c |= 1;
      }
    }
    coo.add(r, c, rng.next_signed_float());
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix chung_lu(index_t rows, index_t cols, double avg_degree, double gamma,
                   std::uint64_t seed) {
  Rng rng(seed);
  // Expected column weights w_c ∝ c^{-1/(gamma-1)} (standard power-law
  // weight sequence), normalised so the expected total nnz is
  // rows * avg_degree.
  std::vector<double> w(static_cast<std::size_t>(cols));
  const double alpha = 1.0 / (gamma - 1.0);
  double total = 0.0;
  for (index_t c = 0; c < cols; ++c) {
    w[static_cast<std::size_t>(c)] = std::pow(static_cast<double>(c) + 1.0, -alpha);
    total += w[static_cast<std::size_t>(c)];
  }
  // Cumulative distribution for inverse-transform sampling of columns.
  std::vector<double> cdf(w.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    acc += w[i] / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;

  CooMatrix coo(rows, cols);
  const auto nnz_target = static_cast<offset_t>(static_cast<double>(rows) * avg_degree);
  coo.reserve(nnz_target);
  for (offset_t k = 0; k < nnz_target; ++k) {
    const auto r = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(rows)));
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const auto c = static_cast<index_t>(std::distance(cdf.begin(), it));
    coo.add(r, std::min(c, static_cast<index_t>(cols - 1)), rng.next_signed_float());
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix banded(index_t n, index_t bandwidth, double fill, std::uint64_t seed) {
  Rng rng(seed);
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    const index_t lo = std::max(index_t{0}, static_cast<index_t>(i - bandwidth));
    const index_t hi = std::min(static_cast<index_t>(n - 1), static_cast<index_t>(i + bandwidth));
    for (index_t c = lo; c <= hi; ++c) {
      if (c == i || rng.next_double() < fill) coo.add(i, c, rng.next_signed_float());
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix diagonal(index_t n) {
  CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 1.0f);
  return CsrMatrix::from_coo(coo);
}

CsrMatrix clustered_rows(const ClusteredParams& p, std::uint64_t seed) {
  Rng rng(seed);
  if (p.num_groups <= 0 || p.rows <= 0) throw sparse::invalid_matrix("bad clustered params");

  // Column pool per group: either `group_cols` columns sampled without
  // replacement from the full column range (pools may overlap), or the
  // group's own contiguous column block.
  std::vector<std::vector<index_t>> pools(static_cast<std::size_t>(p.num_groups));
  if (p.disjoint_pools) {
    if (p.num_groups * p.group_cols > p.cols) {
      throw sparse::invalid_matrix("disjoint_pools needs num_groups*group_cols <= cols");
    }
    for (index_t g = 0; g < p.num_groups; ++g) {
      auto& pool = pools[static_cast<std::size_t>(g)];
      pool.reserve(static_cast<std::size_t>(p.group_cols));
      for (index_t k = 0; k < p.group_cols; ++k) pool.push_back(g * p.group_cols + k);
    }
  } else {
    std::unordered_set<index_t> taken;
    for (auto& pool : pools) {
      taken.clear();
      pool.reserve(static_cast<std::size_t>(p.group_cols));
      while (static_cast<index_t>(pool.size()) < p.group_cols) {
        const auto c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(p.cols)));
        if (taken.insert(c).second) pool.push_back(c);
      }
    }
  }

  // Group assignment: contiguous blocks, optionally scattered afterwards.
  std::vector<index_t> group_of(static_cast<std::size_t>(p.rows));
  for (index_t i = 0; i < p.rows; ++i) {
    group_of[static_cast<std::size_t>(i)] =
        static_cast<index_t>((static_cast<std::int64_t>(i) * p.num_groups) / p.rows);
  }
  if (p.scatter) {
    // Fisher–Yates on the assignment vector.
    for (std::size_t i = group_of.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.next_below(i));
      std::swap(group_of[i - 1], group_of[j]);
    }
  }

  CooMatrix coo(p.rows, p.cols);
  coo.reserve(static_cast<offset_t>(p.rows) * (p.row_nnz + p.noise_nnz));
  std::unordered_set<index_t> used;
  for (index_t i = 0; i < p.rows; ++i) {
    const auto& pool = pools[static_cast<std::size_t>(group_of[static_cast<std::size_t>(i)])];
    used.clear();
    index_t placed = 0;
    while (placed < p.row_nnz && static_cast<index_t>(used.size()) < p.group_cols) {
      const index_t c = pool[rng.next_below(pool.size())];
      if (used.insert(c).second) {
        coo.add(i, c, rng.next_signed_float());
        ++placed;
      }
    }
    for (index_t k = 0; k < p.noise_nnz; ++k) {
      const auto c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(p.cols)));
      if (used.insert(c).second) coo.add(i, c, rng.next_signed_float());
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix gnn_frontier(const GnnFrontierParams& p, std::uint64_t seed) {
  Rng rng(seed);
  if (p.nodes <= 0 || p.communities <= 0 || p.fanout <= 0) {
    throw sparse::invalid_matrix("bad gnn_frontier params");
  }
  if (p.hub_cols < 0 || p.hub_cols >= p.nodes) {
    throw sparse::invalid_matrix("gnn_frontier needs 0 <= hub_cols < nodes");
  }

  // Hubs occupy the first `hub_cols` columns; each community owns an
  // equal contiguous block of the remainder.
  const index_t block = std::max(index_t{1}, static_cast<index_t>((p.nodes - p.hub_cols) / p.communities));

  // Community assignment: contiguous blocks scattered through the row
  // order (same idiom as clustered_rows with scatter=true).
  std::vector<index_t> community_of(static_cast<std::size_t>(p.nodes));
  for (index_t i = 0; i < p.nodes; ++i) {
    community_of[static_cast<std::size_t>(i)] =
        static_cast<index_t>((static_cast<std::int64_t>(i) * p.communities) / p.nodes);
  }
  for (std::size_t i = community_of.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(community_of[i - 1], community_of[j]);
  }

  CooMatrix coo(p.nodes, p.nodes);
  coo.reserve(static_cast<offset_t>(p.nodes) * p.fanout);
  std::unordered_set<index_t> used;
  for (index_t i = 0; i < p.nodes; ++i) {
    const index_t base = static_cast<index_t>(
        p.hub_cols + community_of[static_cast<std::size_t>(i)] * block);
    used.clear();
    index_t placed = 0;
    // Cap the attempts so tiny blocks plus few hubs cannot spin forever.
    const index_t attempts = static_cast<index_t>(8 * p.fanout + 64);
    for (index_t t = 0; t < attempts && placed < p.fanout; ++t) {
      index_t c;
      if (p.hub_cols > 0 && rng.next_double() < p.hub_prob) {
        c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(p.hub_cols)));
      } else {
        c = static_cast<index_t>(base + rng.next_below(static_cast<std::uint64_t>(block)));
      }
      if (c >= p.nodes) c = static_cast<index_t>(p.nodes - 1);
      if (used.insert(c).second) {
        coo.add(i, c, rng.next_signed_float());
        ++placed;
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix scrna_cells(const ScrnaParams& p, std::uint64_t seed) {
  Rng rng(seed);
  if (p.cells <= 0 || p.genes <= 0 || p.cell_types <= 0 || p.expr_per_cell <= 0) {
    throw sparse::invalid_matrix("bad scrna params");
  }
  if (p.housekeeping < 0 || p.housekeeping >= p.genes ||
      p.markers_per_type <= 0 || p.markers_per_type > p.genes - p.housekeeping) {
    throw sparse::invalid_matrix("scrna needs 0 <= housekeeping and markers within the gene range");
  }

  // Marker pools: markers_per_type genes per type, sampled without
  // replacement from the non-housekeeping columns (pools may overlap —
  // related cell lineages share markers).
  std::vector<std::vector<index_t>> markers(static_cast<std::size_t>(p.cell_types));
  std::unordered_set<index_t> taken;
  for (auto& pool : markers) {
    taken.clear();
    pool.reserve(static_cast<std::size_t>(p.markers_per_type));
    while (static_cast<index_t>(pool.size()) < p.markers_per_type) {
      const auto c = static_cast<index_t>(
          p.housekeeping + rng.next_below(static_cast<std::uint64_t>(p.genes - p.housekeeping)));
      if (taken.insert(c).second) pool.push_back(c);
    }
  }

  // Type assignment: contiguous blocks scattered through the row order
  // (same idiom as clustered_rows with scatter=true).
  std::vector<index_t> type_of(static_cast<std::size_t>(p.cells));
  for (index_t i = 0; i < p.cells; ++i) {
    type_of[static_cast<std::size_t>(i)] =
        static_cast<index_t>((static_cast<std::int64_t>(i) * p.cell_types) / p.cells);
  }
  for (std::size_t i = type_of.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(type_of[i - 1], type_of[j]);
  }

  CooMatrix coo(p.cells, p.genes);
  coo.reserve(static_cast<offset_t>(p.cells) * p.expr_per_cell);
  std::unordered_set<index_t> used;
  for (index_t i = 0; i < p.cells; ++i) {
    const auto& pool = markers[static_cast<std::size_t>(type_of[static_cast<std::size_t>(i)])];
    used.clear();
    index_t placed = 0;
    // Cap the attempts so tiny gene pools cannot spin forever.
    const index_t attempts = static_cast<index_t>(8 * p.expr_per_cell + 64);
    for (index_t t = 0; t < attempts && placed < p.expr_per_cell; ++t) {
      index_t c;
      if (p.housekeeping > 0 && rng.next_double() < p.housekeeping_prob) {
        c = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(p.housekeeping)));
      } else {
        c = pool[rng.next_below(pool.size())];
      }
      if (used.insert(c).second) {
        // UMI-style small positive counts.
        coo.add(i, c, static_cast<float>(1 + rng.next_below(8)));
        ++placed;
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix dlmc_pruned(const DlmcParams& p, std::uint64_t seed) {
  Rng rng(seed);
  if (p.rows <= 0 || p.cols <= 0 || p.density <= 0.0 || p.density > 1.0 || p.skew < 1.0) {
    throw sparse::invalid_matrix("bad dlmc params");
  }

  const auto row_nnz = std::max<index_t>(
      1, static_cast<index_t>(static_cast<double>(p.cols) * p.density));
  CooMatrix coo(p.rows, p.cols);
  coo.reserve(static_cast<offset_t>(p.rows) * row_nnz);
  std::unordered_set<index_t> used;
  for (index_t i = 0; i < p.rows; ++i) {
    used.clear();
    index_t placed = 0;
    const index_t attempts = static_cast<index_t>(8 * row_nnz + 64);
    for (index_t t = 0; t < attempts && placed < row_nnz; ++t) {
      // Inverse-transform draw from the popularity law: low columns
      // (important output neurons) are kept by many rows.
      const double u = rng.next_double();
      auto c = static_cast<index_t>(static_cast<double>(p.cols) * std::pow(u, p.skew));
      if (c >= p.cols) c = static_cast<index_t>(p.cols - 1);
      if (used.insert(c).second) {
        coo.add(i, c, rng.next_signed_float());
        ++placed;
      }
    }
  }
  return CsrMatrix::from_coo(coo);
}

CsrMatrix shuffle_rows(const CsrMatrix& m, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<index_t> perm = sparse::identity_permutation(m.rows());
  for (std::size_t i = perm.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.next_below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return sparse::permute_rows(m, perm);
}

}  // namespace rrspmm::synth
