// Evaluation corpus builder.
//
// Stands in for the paper's 1084 SuiteSparse + Network Repository
// matrices (see DESIGN.md §2). Builds a deterministic, parameter-swept
// mix of the structural families in generators.hpp, sized for the
// available compute budget:
//
//   RRSPMM_CORPUS_N — number of matrices (default 96)
//   RRSPMM_SCALE    — linear size multiplier on rows/nnz (default 1)
//
// Family proportions are chosen so that roughly a third of the corpus is
// "scattered but clusterable" (shuffled clustered / shuffled banded),
// matching the paper's observation that 351/1084 matrices have <1% of
// nonzeros in dense tiles and benefit from reordering.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparse/csr.hpp"

namespace rrspmm::synth {

struct CorpusEntry {
  std::string name;    ///< unique, stable identifier, e.g. "clustered_scatter_07"
  std::string family;  ///< generator family name
  sparse::CsrMatrix matrix;
};

struct CorpusConfig {
  int count = 48;            ///< number of matrices
  double scale = 1.0;        ///< linear multiplier on rows and nnz
  std::uint64_t seed = 2020; ///< master seed; entry i uses seed + i
};

/// Reads RRSPMM_CORPUS_N / RRSPMM_SCALE / RRSPMM_SEED from the
/// environment, falling back to the defaults above.
CorpusConfig corpus_config_from_env();

/// Builds the corpus. Deterministic in `cfg`.
std::vector<CorpusEntry> build_corpus(const CorpusConfig& cfg);

/// Builds a tiny fixed corpus (8 small matrices) for unit tests.
std::vector<CorpusEntry> build_test_corpus();

}  // namespace rrspmm::synth
