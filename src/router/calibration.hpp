// Offline seeding of the router's cost table from the BENCH_*.json
// artifacts the CI bench-smoke job uploads.
//
// The bench files carry measured latencies of exactly the alternatives
// the router chooses between (generic vs specialized kernels, shard
// strategies, hash vs sort SpGEMM accumulators, serving latency), so a
// freshly deployed router does not start cold: the loader turns them
// into fingerprint-agnostic priors that decide() consults for arms with
// no per-matrix observations yet.
//
// The parser is a deliberately small recursive-descent JSON reader —
// just enough for the bench writers' output (bench_common.hpp) — so the
// library picks up no dependency for this.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rrspmm::router {

class Router;

/// Minimal JSON value tree. Numbers are doubles; object member order is
/// preserved (irrelevant here, cheap to keep).
struct JsonValue {
  enum class Type { null, boolean, number, string, array, object };
  Type type = Type::null;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::vector<std::pair<std::string, JsonValue>> obj;

  const JsonValue* find(std::string_view key) const;
  double number_or(double dflt) const { return type == Type::number ? num : dflt; }
  const std::string* string_or_null() const { return type == Type::string ? &str : nullptr; }
};

/// Parses one JSON document; throws std::runtime_error on malformed
/// input (with a byte offset in the message).
JsonValue parse_json(std::string_view text);

/// Dispatches on the payload's "bench" field and installs priors into
/// `r`. Unknown bench names install nothing. Returns priors installed.
std::size_t calibrate_from_json(Router& r, const JsonValue& doc);

}  // namespace rrspmm::router
