#include "router/router.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string_view>

#include "core/shard_plan.hpp"
#include "kernels/simd/dispatch.hpp"
#include "kernels/simd/specialize.hpp"
#include "kernels/simd/table.hpp"
#include "router/calibration.hpp"

namespace rrspmm::router {

namespace {

// Matrices at or below this row count offer the sequential arm: the
// worker pool's fan-out/join overhead is comparable to the whole SpMM
// there, and only a measurement can say which side wins on this host.
constexpr index_t kSequentialArmMaxRows = 4096;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::spmm: return "spmm";
    case Workload::sddmm: return "sddmm";
    case Workload::spgemm: return "spgemm";
    case Workload::shard: return "shard";
    case Workload::coalesce: return "coalesce";
  }
  return "?";
}

int k_bucket(index_t k) {
  if (k <= 1) return 0;
  int b = 0;
  index_t v = k - 1;
  while (v > 0) {
    v >>= 1;
    ++b;
  }
  return b;
}

std::string RouteChoice::key() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "s%ug%ud%ut%ub%ua%u", static_cast<unsigned>(spec_mode),
                micro_gemm ? 1U : 0U, static_cast<unsigned>(shard_strategy),
                static_cast<unsigned>(threads), static_cast<unsigned>(batch),
                static_cast<unsigned>(accumulator));
  return buf;
}

bool RouteChoice::parse(const std::string& s, RouteChoice& out) {
  unsigned sm = 0, g = 0, d = 0, t = 0, b = 0, a = 0;
  if (std::sscanf(s.c_str(), "s%ug%ud%ut%ub%ua%u", &sm, &g, &d, &t, &b, &a) != 6) return false;
  if (sm > 255 || g > 1 || d > 255 || t > 255 || b > 255 || a > 255) return false;
  out.spec_mode = static_cast<std::uint8_t>(sm);
  out.micro_gemm = g != 0;
  out.shard_strategy = static_cast<std::uint8_t>(d);
  out.threads = static_cast<std::uint8_t>(t);
  out.batch = static_cast<std::uint8_t>(b);
  out.accumulator = static_cast<std::uint8_t>(a);
  return true;
}

RouteContext make_route_context(double mean_nnz_row, double p90_nnz_row) {
  RouteContext ctx;
  ctx.contextual = true;
  ctx.mean_bucket = mean_nnz_row < 2.0 ? 0 : mean_nnz_row < 8.0 ? 1 : mean_nnz_row < 32.0 ? 2 : 3;
  ctx.p90_bucket = p90_nnz_row < 4.0 ? 0 : p90_nnz_row < 16.0 ? 1 : p90_nnz_row < 64.0 ? 2 : 3;
  return ctx;
}

int ctx_bucket(index_t k, const RouteContext& ctx) {
  const int kb = k_bucket(k);
  if (!ctx.contextual) return kb;
  // k_bucket is at most 32 for 32-bit index_t, so the plain buckets
  // occupy 0..63 and every contextual block starts at a multiple of 64
  // with block 0 reserved for "no context" — the two keyings can never
  // collide in a persisted table.
  return kb + 64 * (1 + static_cast<int>(ctx.mean_bucket) * 4 + static_cast<int>(ctx.p90_bucket));
}

std::string route_key(const std::string& fingerprint, Workload w, index_t k,
                      const RouteChoice& choice) {
  return route_key(fingerprint, w, k, RouteContext{}, choice);
}

std::string route_key(const std::string& fingerprint, Workload w, index_t k,
                      const RouteContext& ctx, const RouteChoice& choice) {
  std::string s = fingerprint;
  s += '|';
  s += workload_name(w);
  s += "|k";
  s += std::to_string(k_bucket(k));
  if (ctx.contextual) {
    s += 'm';
    s += std::to_string(static_cast<int>(ctx.mean_bucket));
    s += 'p';
    s += std::to_string(static_cast<int>(ctx.p90_bucket));
  }
  s += '|';
  s += choice.key();
  return s;
}

bool compiled() {
#ifdef RRSPMM_ROUTER_DISABLED
  return false;
#else
  return true;
#endif
}

Router::Router(RouterConfig cfg) : cfg_(cfg) {
  if (cfg_.max_keys == 0) cfg_.max_keys = 1;
}

std::string Router::table_key(const std::string& fingerprint, Workload w, int bucket) {
  std::string s = fingerprint;
  s += '|';
  s += std::to_string(static_cast<int>(w));
  s += '|';
  s += std::to_string(bucket);
  return s;
}

Router::KeyState* Router::find_locked(const std::string& key) {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

const Router::KeyState* Router::find_locked(const std::string& key) const {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : &it->second;
}

Router::Arm& Router::arm_locked(KeyState& ks, const RouteChoice& choice) {
  for (Arm& a : ks.arms) {
    if (a.choice == choice) return a;
  }
  ks.arms.push_back(Arm{choice, {}});
  return ks.arms.back();
}

const ArmStats* Router::prior_locked(Workload w, int bucket, const RouteChoice& choice) const {
  const KeyState* ks = find_locked(table_key(std::string(), w, bucket));
  if (!ks) return nullptr;
  for (const Arm& a : ks->arms) {
    if (a.choice == choice && a.stats.count > 0) return &a.stats;
  }
  return nullptr;
}

Decision Router::decide(const std::string& fingerprint, Workload w, index_t k,
                        const std::vector<RouteChoice>& arms) {
  return decide(fingerprint, w, k, RouteContext{}, arms);
}

Decision Router::decide(const std::string& fingerprint, Workload w, index_t k,
                        const RouteContext& ctx, const std::vector<RouteChoice>& arms) {
  Decision dec;
  if (!arms.empty()) dec.choice = arms[0];
#ifdef RRSPMM_ROUTER_DISABLED
  (void)fingerprint;
  (void)w;
  (void)k;
  (void)ctx;
  return dec;
#else
  if (arms.empty()) return dec;
  const int base_bucket = k_bucket(k);
  const int bucket = ctx_bucket(k, ctx);
  const std::string key = table_key(fingerprint, w, bucket);

  std::lock_guard<std::mutex> lk(m_);
  KeyState* ks = find_locked(key);
  if (!ks) {
    if (table_.size() >= cfg_.max_keys) return dec;  // table full: default, unrouted
    ks = &table_[key];
  }
  ++decisions_;
  dec.routed = true;

  // Arms observed under the plain K-bucket key seed a contextual key
  // that has not measured them yet, so a pre-contextual table (or a
  // sibling context) still informs the first contextual decisions.
  const KeyState* legacy =
      ctx.contextual ? find_locked(table_key(fingerprint, w, base_bucket)) : nullptr;

  // Score every offered arm: local mean, else the legacy pure-K key,
  // else the fingerprint-agnostic prior, else unknown (+inf — sampled
  // first in online mode, ranked last in frozen mode where arms[0]
  // wins ties).
  std::size_t best = 0;
  double best_score = kInf;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    double score = kInf;
    for (const Arm& a : ks->arms) {
      if (a.choice == arms[i] && a.stats.count > 0) {
        score = a.stats.mean_us();
        break;
      }
    }
    if (score == kInf && legacy != nullptr) {
      for (const Arm& a : legacy->arms) {
        if (a.choice == arms[i] && a.stats.count > 0) {
          score = a.stats.mean_us();
          break;
        }
      }
    }
    if (score == kInf) {
      if (const ArmStats* p = prior_locked(w, base_bucket, arms[i])) score = p->mean_us();
    }
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }

  if (cfg_.frozen) {
    dec.choice = arms[best_score == kInf ? 0 : best];
    return dec;
  }

  const std::uint64_t c = ks->counter++;

  // Fill phase: every arm gets min_samples local observations before the
  // key exploits, in offer order — deterministic, no RNG.
  for (std::size_t i = 0; i < arms.size(); ++i) {
    std::uint64_t have = 0;
    for (const Arm& a : ks->arms) {
      if (a.choice == arms[i]) {
        have = a.stats.count;
        break;
      }
    }
    if (have < cfg_.min_samples) {
      dec.choice = arms[i];
      dec.explored = true;
      ++explorations_;
      return dec;
    }
  }

  // Periodic re-probe so a drifted workload can re-converge.
  if (cfg_.explore_period > 0 && (c % cfg_.explore_period) == cfg_.explore_period - 1) {
    const std::size_t i = static_cast<std::size_t>(c / cfg_.explore_period) % arms.size();
    dec.choice = arms[i];
    dec.explored = i != best;
    if (dec.explored) ++explorations_;
    return dec;
  }

  dec.choice = arms[best_score == kInf ? 0 : best];
  return dec;
#endif
}

void Router::observe(const std::string& fingerprint, Workload w, index_t k,
                     const RouteChoice& choice, double us) {
  observe(fingerprint, w, k, RouteContext{}, choice, us);
}

void Router::observe(const std::string& fingerprint, Workload w, index_t k,
                     const RouteContext& ctx, const RouteChoice& choice, double us) {
#ifdef RRSPMM_ROUTER_DISABLED
  (void)fingerprint;
  (void)w;
  (void)k;
  (void)ctx;
  (void)choice;
  (void)us;
#else
  if (cfg_.frozen || us < 0.0) return;
  const std::string key = table_key(fingerprint, w, ctx_bucket(k, ctx));
  std::lock_guard<std::mutex> lk(m_);
  KeyState* ks = find_locked(key);
  if (!ks) {
    if (table_.size() >= cfg_.max_keys) return;
    ks = &table_[key];
  }
  arm_locked(*ks, choice).stats.add(us);
#endif
}

RouteChoice Router::preferred(const std::string& fingerprint, Workload w,
                              const RouteChoice& fallback) const {
#ifndef RRSPMM_ROUTER_DISABLED
  const std::string prefix = fingerprint + '|' + std::to_string(static_cast<int>(w)) + '|';
  std::lock_guard<std::mutex> lk(m_);
  // Aggregate each arm across this (fingerprint, workload)'s K-buckets;
  // best mean with at least one observation wins.
  std::vector<Arm> merged;
  for (const auto& [key, ks] : table_) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    for (const Arm& a : ks.arms) {
      bool found = false;
      for (Arm& m : merged) {
        if (m.choice == a.choice) {
          m.stats.merge(a.stats);
          found = true;
          break;
        }
      }
      if (!found) merged.push_back(a);
    }
  }
  const Arm* best = nullptr;
  for (const Arm& a : merged) {
    if (a.stats.count == 0) continue;
    if (!best || a.stats.mean_us() < best->stats.mean_us()) best = &a;
  }
  if (best) return best->choice;
#else
  (void)fingerprint;
  (void)w;
#endif
  return fallback;
}

std::vector<RouteChoice> Router::spmm_arms(const kernels::simd::SpecializationPlan* spec,
                                           index_t k, index_t rows,
                                           double dense_row_fraction) {
  std::vector<RouteChoice> arms;
  arms.emplace_back();  // the configured default path
  RouteChoice off;
  off.spec_mode = static_cast<std::uint8_t>(kernels::simd::SpecMode::off);
  arms.push_back(off);
  if (spec != nullptr && spec->enabled) {
    if (spec->dense_panels > 0 && kernels::simd::spec_k_slot(k) >= 0 &&
        k <= kernels::simd::kSpecPanelKMax) {
      RouteChoice all;
      all.spec_mode = static_cast<std::uint8_t>(kernels::simd::SpecMode::all);
      arms.push_back(all);
    }
    if (spec->dense_tile_rows > 0 && spec->dense_full_fraction() >= dense_row_fraction) {
      RouteChoice micro;
      micro.micro_gemm = true;
      arms.push_back(micro);
    }
  }
  if (rows > 0 && rows <= kSequentialArmMaxRows) {
    RouteChoice seq;
    seq.threads = 1;
    arms.push_back(seq);
  }
  return arms;
}

std::vector<RouteChoice> Router::sddmm_arms(const kernels::simd::SpecializationPlan* spec,
                                            index_t k) {
  std::vector<RouteChoice> arms;
  arms.emplace_back();
  RouteChoice off;
  off.spec_mode = static_cast<std::uint8_t>(kernels::simd::SpecMode::off);
  arms.push_back(off);
  if (spec != nullptr && spec->enabled && spec->dense_panels > 0 &&
      kernels::simd::spec_k_slot(k) >= 0 && k <= kernels::simd::kSpecPanelKMax) {
    RouteChoice all;
    all.spec_mode = static_cast<std::uint8_t>(kernels::simd::SpecMode::all);
    arms.push_back(all);
  }
  return arms;
}

std::vector<RouteChoice> Router::shard_arms(std::uint8_t default_strategy) {
  std::vector<RouteChoice> arms;
  RouteChoice def;
  def.shard_strategy = default_strategy;
  arms.push_back(def);
  for (std::uint8_t s = 0;
       s <= static_cast<std::uint8_t>(core::ShardStrategy::reorder_aware); ++s) {
    if (s == default_strategy) continue;
    RouteChoice c;
    c.shard_strategy = s;
    arms.push_back(c);
  }
  return arms;
}

std::vector<RouteChoice> Router::spgemm_arms() {
  std::vector<RouteChoice> arms;
  arms.emplace_back();  // config default (auto_select unless overridden)
  RouteChoice hash;
  hash.accumulator = 0;
  arms.push_back(hash);
  RouteChoice sort;
  sort.accumulator = 1;
  arms.push_back(sort);
  return arms;
}

std::vector<RouteChoice> Router::coalesce_arms() {
  std::vector<RouteChoice> arms;
  arms.emplace_back();  // batch = 0: the server's configured max_batch
  RouteChoice single;
  single.batch = 1;
  arms.push_back(single);
  return arms;
}

void Router::install_prior(Workload w, int bucket, const RouteChoice& choice, double mean_us,
                           std::uint64_t weight) {
#ifdef RRSPMM_ROUTER_DISABLED
  (void)w;
  (void)bucket;
  (void)choice;
  (void)mean_us;
  (void)weight;
#else
  if (weight == 0 || mean_us < 0.0) return;
  std::lock_guard<std::mutex> lk(m_);
  KeyState* ks = find_locked(table_key(std::string(), w, bucket));
  if (!ks) {
    if (table_.size() >= cfg_.max_keys) return;
    ks = &table_[table_key(std::string(), w, bucket)];
  }
  ArmStats s;
  s.count = weight;
  s.total_us = mean_us * static_cast<double>(weight);
  s.min_us = mean_us;
  s.max_us = mean_us;
  arm_locked(*ks, choice).stats.merge(s);
#endif
}

std::size_t Router::load_calibration_json(const std::string& json) {
#ifdef RRSPMM_ROUTER_DISABLED
  (void)json;
  return 0;
#else
  return calibrate_from_json(*this, parse_json(json));
#endif
}

std::size_t Router::load_calibration_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("router calibration: cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return load_calibration_json(buf.str());
}

void Router::save_table(std::ostream& out) const {
  std::lock_guard<std::mutex> lk(m_);
  out << "rrspmm-router-table v1\n" << table_.size() << '\n';
  out.precision(17);
  for (const auto& [key, ks] : table_) {
    // key = "<fp>|<workload>|<bucket>"; fp may be empty (priors).
    const std::size_t p2 = key.rfind('|');
    const std::size_t p1 = key.rfind('|', p2 - 1);
    std::string fp = key.substr(0, p1);
    out << (fp.empty() ? "-" : fp) << ' ' << key.substr(p1 + 1, p2 - p1 - 1) << ' '
        << key.substr(p2 + 1) << ' ' << ks.arms.size() << ' ' << ks.counter << '\n';
    for (const Arm& a : ks.arms) {
      out << a.choice.key() << ' ' << a.stats.count << ' ' << a.stats.total_us << ' '
          << a.stats.min_us << ' ' << a.stats.max_us << '\n';
    }
  }
}

std::size_t Router::load_table(std::istream& in) {
#ifdef RRSPMM_ROUTER_DISABLED
  (void)in;
  return 0;
#else
  std::string header;
  std::getline(in, header);
  if (header != "rrspmm-router-table v1") {
    throw std::runtime_error("not an rrspmm router table");
  }
  std::size_t nkeys = 0;
  in >> nkeys;
  std::size_t loaded = 0;
  std::lock_guard<std::mutex> lk(m_);
  for (std::size_t i = 0; i < nkeys; ++i) {
    std::string fp;
    int w = 0;
    int bucket = 0;
    std::size_t narms = 0;
    std::uint64_t counter = 0;
    if (!(in >> fp >> w >> bucket >> narms >> counter)) {
      throw std::runtime_error("router table truncated");
    }
    if (fp == "-") fp.clear();
    if (w < 0 || w >= static_cast<int>(kWorkloadCount) || narms > 256) {
      throw std::runtime_error("router table is corrupt");
    }
    const std::string key = table_key(fp, static_cast<Workload>(w), bucket);
    KeyState* ks = find_locked(key);
    if (!ks && table_.size() < cfg_.max_keys) ks = &table_[key];
    for (std::size_t a = 0; a < narms; ++a) {
      std::string ck;
      ArmStats s;
      if (!(in >> ck >> s.count >> s.total_us >> s.min_us >> s.max_us)) {
        throw std::runtime_error("router table truncated");
      }
      RouteChoice choice;
      if (!RouteChoice::parse(ck, choice)) throw std::runtime_error("router table is corrupt");
      if (ks) {
        arm_locked(*ks, choice).stats.merge(s);
        ++loaded;
      }
    }
    if (ks && counter > ks->counter) ks->counter = counter;
  }
  return loaded;
#endif
}

void Router::save_table_file(const std::string& path) const {
  std::ofstream f(path, std::ios::trunc);
  if (!f) throw std::runtime_error("router table: cannot open " + path + " for writing");
  save_table(f);
  if (!f) throw std::runtime_error("router table: failed writing " + path);
}

std::size_t Router::load_table_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("router table: cannot open " + path);
  return load_table(f);
}

std::vector<core::RouteRecord> Router::export_records(const std::string& fingerprint) const {
  std::vector<core::RouteRecord> out;
#ifndef RRSPMM_ROUTER_DISABLED
  const std::string prefix = fingerprint + '|';
  std::lock_guard<std::mutex> lk(m_);
  for (const auto& [key, ks] : table_) {
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    const std::size_t p2 = key.rfind('|');
    const std::size_t p1 = key.rfind('|', p2 - 1);
    if (p1 < prefix.size() - 1) continue;  // '|' inside the fingerprint? skip
    const int w = std::atoi(key.c_str() + p1 + 1);
    const int bucket = std::atoi(key.c_str() + p2 + 1);
    if (key.substr(0, p1) != fingerprint) continue;
    for (const Arm& a : ks.arms) {
      if (a.stats.count == 0) continue;
      core::RouteRecord r;
      r.workload = static_cast<std::uint8_t>(w);
      r.k_bucket = bucket;
      r.spec_mode = a.choice.spec_mode;
      r.micro_gemm = a.choice.micro_gemm ? 1 : 0;
      r.shard_strategy = a.choice.shard_strategy;
      r.threads = a.choice.threads;
      r.batch = a.choice.batch;
      r.accumulator = a.choice.accumulator;
      r.count = a.stats.count;
      r.total_us = a.stats.total_us;
      r.min_us = a.stats.min_us;
      r.max_us = a.stats.max_us;
      out.push_back(r);
    }
  }
#else
  (void)fingerprint;
#endif
  return out;
}

std::size_t Router::import_records(const std::string& fingerprint,
                                   const std::vector<core::RouteRecord>& records) {
#ifdef RRSPMM_ROUTER_DISABLED
  (void)fingerprint;
  (void)records;
  return 0;
#else
  std::size_t merged = 0;
  std::lock_guard<std::mutex> lk(m_);
  for (const core::RouteRecord& r : records) {
    if (r.workload >= kWorkloadCount || r.count == 0) continue;
    const std::string key =
        table_key(fingerprint, static_cast<Workload>(r.workload), r.k_bucket);
    KeyState* ks = find_locked(key);
    if (!ks) {
      if (table_.size() >= cfg_.max_keys) continue;
      ks = &table_[key];
    }
    RouteChoice choice;
    choice.spec_mode = r.spec_mode;
    choice.micro_gemm = r.micro_gemm != 0;
    choice.shard_strategy = r.shard_strategy;
    choice.threads = r.threads;
    choice.batch = r.batch;
    choice.accumulator = r.accumulator;
    ArmStats s;
    s.count = r.count;
    s.total_us = r.total_us;
    s.min_us = r.min_us;
    s.max_us = r.max_us;
    arm_locked(*ks, choice).stats.merge(s);
    ++merged;
  }
  return merged;
#endif
}

std::string Router::to_json() const {
  std::ostringstream js;
  js.precision(9);
  std::lock_guard<std::mutex> lk(m_);
  js << "{\"frozen\":" << (cfg_.frozen ? "true" : "false") << ",\"keys\":" << table_.size()
     << ",\"decisions\":" << decisions_ << ",\"explorations\":" << explorations_
     << ",\"table\":{";
  bool first_key = true;
  for (const auto& [key, ks] : table_) {
    if (!first_key) js << ',';
    first_key = false;
    js << '"' << key << "\":{";
    for (std::size_t i = 0; i < ks.arms.size(); ++i) {
      const Arm& a = ks.arms[i];
      if (i) js << ',';
      js << '"' << a.choice.key() << "\":{\"count\":" << a.stats.count
         << ",\"mean_us\":" << a.stats.mean_us() << ",\"min_us\":" << a.stats.min_us
         << ",\"max_us\":" << a.stats.max_us << '}';
    }
    js << '}';
  }
  js << "}}";
  return js.str();
}

std::uint64_t Router::decisions() const {
  std::lock_guard<std::mutex> lk(m_);
  return decisions_;
}

std::uint64_t Router::explorations() const {
  std::lock_guard<std::mutex> lk(m_);
  return explorations_;
}

std::size_t Router::keys() const {
  std::lock_guard<std::mutex> lk(m_);
  return table_.size();
}

std::shared_ptr<Router> from_env() {
#ifdef RRSPMM_ROUTER_DISABLED
  return nullptr;
#else
  const char* s = std::getenv("RRSPMM_ROUTER");
  if (s == nullptr) return nullptr;
  const std::string_view v(s);
  RouterConfig cfg;
  if (v == "frozen") {
    cfg.frozen = true;
  } else if (!(v == "1" || v == "on" || v == "true" || v == "yes" || v == "online")) {
    return nullptr;
  }
  auto r = std::make_shared<Router>(cfg);
  if (const char* path = std::getenv("RRSPMM_ROUTER_TABLE")) {
    try {
      r->load_table_file(path);
    } catch (const std::exception& e) {
      // Serving must not die for a stale or missing table: warn and run
      // cold (online mode will relearn; frozen mode routes defaults).
      std::fprintf(stderr, "rrspmm: RRSPMM_ROUTER_TABLE ignored: %s\n", e.what());
    }
  }
  return r;
#endif
}

// --- Calibration ------------------------------------------------------

std::size_t calibrate_from_json(Router& r, const JsonValue& doc) {
  const JsonValue* bench = doc.find("bench");
  const std::string* name = bench ? bench->string_or_null() : nullptr;
  if (name == nullptr) return 0;
  std::size_t installed = 0;

  if (*name == "kernel_scaling") {
    // The specialization table measures exactly the spec-on vs spec-off
    // alternative per (op, K): generic_ms seeds the spec-off arm,
    // spec_ms the default arm.
    if (const JsonValue* spec = doc.find("specialization")) {
      for (const JsonValue& e : spec->arr) {
        const JsonValue* op = e.find("op");
        const std::string* opname = op ? op->string_or_null() : nullptr;
        if (opname == nullptr) continue;
        const Workload w = *opname == "sddmm" ? Workload::sddmm : Workload::spmm;
        const int bucket = k_bucket(static_cast<index_t>(
            e.find("k") ? e.find("k")->number_or(0) : 0));
        const double generic_ms = e.find("generic_ms") ? e.find("generic_ms")->number_or(-1) : -1;
        const double spec_ms = e.find("spec_ms") ? e.find("spec_ms")->number_or(-1) : -1;
        if (generic_ms > 0) {
          RouteChoice off;
          off.spec_mode = static_cast<std::uint8_t>(kernels::simd::SpecMode::off);
          r.install_prior(w, bucket, off, generic_ms * 1000.0);
          ++installed;
        }
        if (spec_ms > 0) {
          r.install_prior(w, bucket, RouteChoice{}, spec_ms * 1000.0);
          ++installed;
        }
      }
    }
  } else if (*name == "dist_scaling") {
    const int bucket =
        k_bucket(static_cast<index_t>(doc.find("k") ? doc.find("k")->number_or(0) : 0));
    if (const JsonValue* results = doc.find("results")) {
      for (const JsonValue& e : results->arr) {
        const JsonValue* strat = e.find("strategy");
        const std::string* sname = strat ? strat->string_or_null() : nullptr;
        const double makespan = e.find("makespan_s") ? e.find("makespan_s")->number_or(-1) : -1;
        if (sname == nullptr || makespan <= 0) continue;
        RouteChoice c;
        if (*sname == "contiguous") {
          c.shard_strategy = static_cast<std::uint8_t>(core::ShardStrategy::contiguous);
        } else if (*sname == "nnz_balanced") {
          c.shard_strategy = static_cast<std::uint8_t>(core::ShardStrategy::nnz_balanced);
        } else if (*sname == "reorder_aware") {
          c.shard_strategy = static_cast<std::uint8_t>(core::ShardStrategy::reorder_aware);
        } else {
          continue;
        }
        r.install_prior(Workload::shard, bucket, c, makespan * 1e6);
        ++installed;
      }
    }
  } else if (*name == "spgemm_scaling") {
    if (const JsonValue* results = doc.find("results")) {
      for (const JsonValue& e : results->arr) {
        const double hash_ms = e.find("hash_ms") ? e.find("hash_ms")->number_or(-1) : -1;
        const double sort_ms = e.find("sort_ms") ? e.find("sort_ms")->number_or(-1) : -1;
        if (hash_ms > 0) {
          RouteChoice c;
          c.accumulator = 0;
          r.install_prior(Workload::spgemm, 0, c, hash_ms * 1000.0);
          ++installed;
        }
        if (sort_ms > 0) {
          RouteChoice c;
          c.accumulator = 1;
          r.install_prior(Workload::spgemm, 0, c, sort_ms * 1000.0);
          ++installed;
        }
      }
    }
  } else if (*name == "serving_throughput") {
    // Serving latency seeds the coalescing default arm: the measured mix
    // already runs with coalescing on, so its p50 is that arm's prior.
    if (const JsonValue* results = doc.find("results")) {
      for (const JsonValue& e : results->arr) {
        const double p50 =
            e.find("latency_p50_s") ? e.find("latency_p50_s")->number_or(-1) : -1;
        if (p50 <= 0) continue;
        r.install_prior(Workload::coalesce, 0, RouteChoice{}, p50 * 1e6);
        ++installed;
      }
    }
  }
  return installed;
}

}  // namespace rrspmm::router
