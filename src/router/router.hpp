// Cost-model-driven adaptive execution: a per-plan router that turns
// measured latency into closed-loop kernel/shard/batch decisions.
//
// The paper's thesis is that the right layout and execution strategy
// depend on the matrix; the repo has every knob that thesis implies
// (scalar vs SIMD ISA, AOT-specialized variants, the dense-tile
// micro-GEMM, hash/sort SpGEMM accumulators, shard strategies, batch
// coalescing) but picked them statically until now. The Router closes
// the loop, AHAS-style: a cost table keyed on
//
//   (matrix fingerprint, workload, ceil-log2 K bucket)
//
// maps candidate configurations ("arms") to measured latency stats.
// The Server and the ShardedExecutor ask it to decide() before each
// batch and observe() the measured latency after — a deterministic
// epsilon-greedy bandit per key. Seeding comes from the BENCH_*.json
// trajectories (calibration.hpp) as fingerprint-agnostic priors, and
// learned entries ride the ExecutionPlan through plan files (v4) as
// core::RouteRecord, so a redeployed plan starts warm.
//
// Routing never changes result bits: every arm is one of the existing
// bitwise-guarded execution paths (specialization on/off, micro-GEMM,
// shard strategy, accumulator, sequential fallback), all of which
// preserve the scalar reference's per-element accumulation order on the
// non-fma path. The router only chooses *which* of the bit-identical
// paths runs, so bitwise/chaos CI contracts hold with it enabled.
//
// Determinism: online mode explores on a per-key decision counter (fill
// each arm to min_samples round-robin, then every explore_period-th
// decision probes the next arm) — no wall clock, no RNG, so a replay
// with the same request sequence makes the same decisions. Frozen mode
// (RRSPMM_ROUTER=frozen) never updates the table and never explores:
// decisions are a pure function of the loaded table, identical across
// thread counts, process restarts, and plan-cache eviction/reload.
//
// Env knobs (read by from_env()):
//   RRSPMM_ROUTER       = off (default) | on | frozen
//   RRSPMM_ROUTER_TABLE = path to a saved table (save_table_file) loaded
//                         at construction; with "frozen" this is the
//                         whole cost model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "sparse/types.hpp"

namespace rrspmm::kernels::simd {
struct SpecializationPlan;
}

namespace rrspmm::router {

/// Workloads routed independently (same matrix, different cost shape).
enum class Workload : std::uint8_t {
  spmm = 0,      ///< server SpMM batches (kernel variant + threads)
  sddmm = 1,     ///< server SDDMM requests (kernel variant)
  spgemm = 2,    ///< server SpGEMM requests (accumulator)
  shard = 3,     ///< ShardedExecutor partitioning (shard strategy)
  coalesce = 4,  ///< server batch formation (coalescing width)
};
inline constexpr std::size_t kWorkloadCount = 5;
const char* workload_name(Workload w);

/// Sentinels for "leave the caller's configured value alone".
inline constexpr std::uint8_t kDefaultShard = 255;
inline constexpr std::uint8_t kDefaultAccumulator = 255;

/// One arm: a complete configuration choice for a decision. Fields the
/// workload does not route stay at their defaults and take no part in
/// the executed configuration.
struct RouteChoice {
  /// kernels::simd::SpecMode as uint8 (0 env, 1 off, 2 rows, 3 all).
  std::uint8_t spec_mode = 0;
  /// Dense-tile micro-GEMM (KernelConfig::micro_gemm).
  bool micro_gemm = false;
  /// core::ShardStrategy as uint8, kDefaultShard = executor's default.
  std::uint8_t shard_strategy = kDefaultShard;
  /// 0 = worker pool, 1 = sequential in-thread execution.
  std::uint8_t threads = 0;
  /// Batch coalescing cap; 0 = the server's configured max_batch.
  std::uint8_t batch = 0;
  /// spgemm::Accumulator as uint8, kDefaultAccumulator = config default.
  std::uint8_t accumulator = kDefaultAccumulator;

  /// Compact stable encoding, e.g. "s2g0d255t0b0a255" — the arm's
  /// identity in tables, metrics keys, and saved files.
  std::string key() const;
  /// Inverse of key(); false on malformed input.
  static bool parse(const std::string& s, RouteChoice& out);
  bool operator==(const RouteChoice& o) const {
    return spec_mode == o.spec_mode && micro_gemm == o.micro_gemm &&
           shard_strategy == o.shard_strategy && threads == o.threads && batch == o.batch &&
           accumulator == o.accumulator;
  }
  bool operator!=(const RouteChoice& o) const { return !(*this == o); }
};

/// Latency statistics of one arm under one key.
struct ArmStats {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double min_us = 0.0;
  double max_us = 0.0;

  void add(double us) {
    min_us = count == 0 ? us : (us < min_us ? us : min_us);
    max_us = count == 0 ? us : (us > max_us ? us : max_us);
    ++count;
    total_us += us;
  }
  void merge(const ArmStats& o) {
    if (o.count == 0) return;
    min_us = count == 0 ? o.min_us : (o.min_us < min_us ? o.min_us : min_us);
    max_us = count == 0 ? o.max_us : (o.max_us > max_us ? o.max_us : max_us);
    count += o.count;
    total_us += o.total_us;
  }
  double mean_us() const { return count > 0 ? total_us / static_cast<double>(count) : 0.0; }
};

struct Decision {
  RouteChoice choice;
  bool routed = false;    ///< false: router off/disabled — caller's defaults ran
  bool explored = false;  ///< true: this pick samples, it is not the argmin
};

struct RouterConfig {
  /// Frozen: pure table lookups, no exploration, no updates.
  bool frozen = false;
  /// Online: every arm is sampled this many times (round-robin) before
  /// exploitation starts for a key.
  std::uint32_t min_samples = 2;
  /// Online: every explore_period-th decision of a key re-probes arms in
  /// rotation so a drifting workload can re-converge. 0 disables.
  std::uint32_t explore_period = 16;
  /// spmm_arms offers the micro-GEMM arm when the plan's
  /// dense_full_fraction() clears this (seeded from calibration).
  double dense_row_fraction = 0.5;
  /// Bound on distinct (fingerprint, workload, k-bucket) keys; new keys
  /// beyond it fall back to the default arm unrouted.
  std::size_t max_keys = 1 << 14;
};

/// K-bucket: ceil(log2(k)) for k >= 1, 0 otherwise — nearby operand
/// widths share a table row, distant ones do not.
int k_bucket(index_t k);

/// Contextual features of the routed matrix beyond the operand width:
/// coarse nnz/row moments (mean + p90), 4 buckets each. A
/// default-constructed context is "no context" and reproduces the pure
/// K-bucket keying, so pre-contextual tables and plan files keep
/// working untouched.
struct RouteContext {
  std::uint8_t mean_bucket = 0;  ///< mean nnz/row: <2, <8, <32, >=32
  std::uint8_t p90_bucket = 0;   ///< p90 nnz/row: <4, <16, <64, >=64
  bool contextual = false;

  bool operator==(const RouteContext& o) const {
    return contextual == o.contextual && mean_bucket == o.mean_bucket &&
           p90_bucket == o.p90_bucket;
  }
};

/// Buckets the nnz/row moments (thresholds above).
RouteContext make_route_context(double mean_nnz_row, double p90_nnz_row);

/// Packs (K bucket, context) into the one integer bucket dimension the
/// table/plan-file formats already carry: plain k_bucket(k) without
/// context (values 0..63), 64*(1 + mean*4 + p90) + k_bucket(k) with.
/// Both round-trip through "rrspmm-router-table v1" and RouteRecord
/// untouched — the packing is why the satellite's backward-compat
/// requirement holds by construction.
int ctx_bucket(index_t k, const RouteContext& ctx);

/// Metrics attribution key of one decided execution:
/// "<fp>|<workload>|k<bucket>[m<mean>p<p90>]|<choice>" (the bracketed
/// context part appears only for contextual decisions).
std::string route_key(const std::string& fingerprint, Workload w, index_t k,
                      const RouteChoice& choice);
std::string route_key(const std::string& fingerprint, Workload w, index_t k,
                      const RouteContext& ctx, const RouteChoice& choice);

/// True unless built with RRSPMM_ENABLE_ROUTER=OFF
/// (RRSPMM_ROUTER_DISABLED): then decide() always returns the first arm
/// unrouted, observe/load/save are no-ops, and from_env() returns null.
bool compiled();

class Router {
 public:
  explicit Router(RouterConfig cfg = {});

  const RouterConfig& config() const { return cfg_; }
  bool frozen() const { return cfg_.frozen; }

  /// Picks an arm for (fingerprint, workload, K). `arms` is the caller's
  /// candidate list; arms[0] must be the safe default. Empty arms or a
  /// disabled build return an unrouted default decision. The contextual
  /// overload keys on ctx_bucket(k, ctx); arms with no observations
  /// under the contextual key fall back to the legacy pure-K key's
  /// stats, then the fingerprint-agnostic priors, so a pre-contextual
  /// table still seeds contextual decisions.
  Decision decide(const std::string& fingerprint, Workload w, index_t k,
                  const std::vector<RouteChoice>& arms);
  Decision decide(const std::string& fingerprint, Workload w, index_t k,
                  const RouteContext& ctx, const std::vector<RouteChoice>& arms);

  /// Records a measured latency for a decided execution. No-op when
  /// frozen (the table is the contract) or compiled out.
  void observe(const std::string& fingerprint, Workload w, index_t k,
               const RouteChoice& choice, double us);
  void observe(const std::string& fingerprint, Workload w, index_t k, const RouteContext& ctx,
               const RouteChoice& choice, double us);

  /// Read-only best arm across every K-bucket of (fingerprint, w),
  /// weighted by sample count; `fallback` when nothing is known. Used by
  /// batch formation, which runs before the operand width is known.
  RouteChoice preferred(const std::string& fingerprint, Workload w,
                        const RouteChoice& fallback) const;

  // --- Arm builders (the policy of what is worth trying) ---------------

  /// SpMM arms: default; spec off; spec all (panel entries) when K
  /// admits them; micro-GEMM when the plan's dense_full_fraction clears
  /// cfg.dense_row_fraction; sequential execution for small matrices.
  static std::vector<RouteChoice> spmm_arms(const kernels::simd::SpecializationPlan* spec,
                                            index_t k, index_t rows,
                                            double dense_row_fraction);
  /// SDDMM arms: default vs specialization off.
  static std::vector<RouteChoice> sddmm_arms(const kernels::simd::SpecializationPlan* spec,
                                             index_t k);
  /// Shard-strategy arms: the executor's default first, then the other
  /// two strategies.
  static std::vector<RouteChoice> shard_arms(std::uint8_t default_strategy);
  /// SpGEMM accumulator arms: config default, then hash and sort pinned.
  static std::vector<RouteChoice> spgemm_arms();
  /// Coalescing arms: configured max_batch (0) vs no coalescing (1).
  static std::vector<RouteChoice> coalesce_arms();

  // --- Seeding and persistence ----------------------------------------

  /// Installs a fingerprint-agnostic prior: arms with no per-matrix
  /// observations score by these means in decide(). `weight` counts as
  /// that many observations when later measurements merge in.
  void install_prior(Workload w, int bucket, const RouteChoice& choice, double mean_us,
                     std::uint64_t weight = 1);

  /// Parses one BENCH_{kernels,dist,spgemm,serving}.json payload and
  /// installs fingerprint-agnostic priors (see calibration.hpp).
  /// Returns the number of prior entries installed.
  std::size_t load_calibration_json(const std::string& json);
  std::size_t load_calibration_file(const std::string& path);

  /// Plain-text table round trip ("rrspmm-router-table v1"). load_table
  /// merges into the current table and returns entries read.
  void save_table(std::ostream& out) const;
  std::size_t load_table(std::istream& in);
  void save_table_file(const std::string& path) const;
  std::size_t load_table_file(const std::string& path);

  /// Learned entries of one fingerprint as plan-portable RouteRecords
  /// (plan-file v4), and the inverse. import returns entries merged.
  std::vector<core::RouteRecord> export_records(const std::string& fingerprint) const;
  std::size_t import_records(const std::string& fingerprint,
                             const std::vector<core::RouteRecord>& records);

  /// Whole table as JSON (diagnostics; shape mirrors Metrics::to_json).
  std::string to_json() const;

  std::uint64_t decisions() const;
  std::uint64_t explorations() const;
  std::size_t keys() const;

 private:
  struct Arm {
    RouteChoice choice;
    ArmStats stats;
  };
  struct KeyState {
    std::uint64_t counter = 0;  ///< decisions taken under this key
    std::vector<Arm> arms;      ///< caller order preserved; arms[0] = default
  };

  // Key layout: "<fingerprint>|<workload>|<k_bucket>"; priors live under
  // the empty fingerprint and are consulted for arms with no local data.
  static std::string table_key(const std::string& fingerprint, Workload w, int bucket);
  KeyState* find_locked(const std::string& key);
  const KeyState* find_locked(const std::string& key) const;
  Arm& arm_locked(KeyState& ks, const RouteChoice& choice);
  const ArmStats* prior_locked(Workload w, int bucket, const RouteChoice& choice) const;

  RouterConfig cfg_;
  mutable std::mutex m_;
  std::unordered_map<std::string, KeyState> table_;
  std::uint64_t decisions_ = 0;
  std::uint64_t explorations_ = 0;
};

/// Builds a Router from RRSPMM_ROUTER / RRSPMM_ROUTER_TABLE; null when
/// the knob is unset/off or the router is compiled out. A table path
/// that fails to load warns on stderr and continues (serving must not
/// die for a stale table file).
std::shared_ptr<Router> from_env();

}  // namespace rrspmm::router
