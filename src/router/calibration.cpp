#include "router/calibration.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "router/router.hpp"

namespace rrspmm::router {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::object) return nullptr;
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_lit(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::string;
        v.str = string();
        return v;
      }
      case 't':
        if (!consume_lit("true")) fail("bad literal");
        return boolean(true);
      case 'f':
        if (!consume_lit("false")) fail("bad literal");
        return boolean(false);
      case 'n':
        if (!consume_lit("null")) fail("bad literal");
        return JsonValue{};
      default: return number();
    }
  }

  static JsonValue boolean(bool b) {
    JsonValue v;
    v.type = JsonValue::Type::boolean;
    v.b = b;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool any = false;
    const auto digits = [&] {
      while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) fail("bad number");
    JsonValue v;
    v.type = JsonValue::Type::number;
    // The slice is bounded and digit-only, so strtod cannot overrun.
    v.num = std::strtod(std::string(s_.substr(start, pos_ - start)).c_str(), nullptr);
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            // The bench writers never emit \u; skip the four hex digits
            // and substitute '?' rather than implementing UTF-16 pairs.
            if (pos_ + 4 > s_.size()) fail("bad unicode escape");
            pos_ += 4;
            out += '?';
            break;
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace rrspmm::router
