#include "gpusim/lru_cache.hpp"

namespace rrspmm::gpusim {

bool LruKeyCache::access(std::uint64_t key) {
  if (capacity_ == 0) {
    ++misses_;
    return false;
  }
  const auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (map_.size() >= capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
  order_.push_front(key);
  map_.emplace(key, order_.begin());
  return false;
}

void LruKeyCache::clear() {
  order_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace rrspmm::gpusim
