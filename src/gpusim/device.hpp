// GPU device model.
//
// Substitution note (DESIGN.md §2): no CUDA toolchain or GPU exists in
// this environment, so the paper's P100 kernels are replaced by a traffic
// simulator parameterised by this device description. The paper's
// performance argument is entirely about global-memory data movement
// (§2.3 counts memory accesses for its worked examples), so a model that
// counts DRAM transactions under a shared-memory + L2 hierarchy and
// converts bytes to time with a roofline reproduces the comparisons.
#pragma once

#include <cstddef>
#include <cstdint>

namespace rrspmm::gpusim {

struct DeviceConfig {
  int num_sms = 56;                        ///< streaming multiprocessors
  int warp_size = 32;                      ///< threads per warp
  std::size_t shared_mem_per_sm = 64 * 1024;  ///< bytes of shared memory per SM
  std::size_t l2_bytes = 4 * 1024 * 1024;  ///< unified L2 capacity
  int line_bytes = 128;                    ///< L2 line / memory transaction size
  double dram_gbps = 732.0;                ///< HBM2 bandwidth, GB/s
  /// Aggregate L2 read bandwidth. Every global access — hit or miss —
  /// traverses the L2, so kernels whose reuse is L2-served (e.g. row-wise
  /// SpMM on well-clustered matrices) are bound by this, not by DRAM.
  /// Converting that L2 traffic into shared-memory traffic is precisely
  /// the advantage of ASpT's dense tiles.
  double l2_gbps = 1600.0;
  /// Aggregate shared-memory bandwidth (56 SMs x 32 banks x 4 B x
  /// ~1.4 GHz); an order of magnitude above L2.
  double shared_gbps = 9500.0;
  double peak_gflops = 9340.0;             ///< fp32 peak
  /// Thread blocks resident per SM (occupancy); together with num_sms
  /// this sets how many blocks' access streams interleave in the L2.
  int blocks_per_sm = 4;
  /// Warps per thread block in the row-wise kernels — each warp owns one
  /// sparse row (paper §2.3: "put several warps processing consecutive
  /// rows into a thread-block").
  int warps_per_block = 4;
  /// Fixed kernel-launch + DRAM-latency overhead added per kernel.
  double launch_overhead_s = 4e-6;

  /// Nvidia P100 (the paper's platform, §5.1).
  static DeviceConfig p100() { return DeviceConfig{}; }

  /// Nvidia V100: 80 SMs, 6 MB L2, 900 GB/s HBM2, ~14 TFLOPS fp32 — used
  /// by the device-sensitivity ablation to check that the reordering
  /// gains are a property of the memory hierarchy, not of one parameter
  /// point.
  static DeviceConfig v100() {
    DeviceConfig dev;
    dev.num_sms = 80;
    dev.shared_mem_per_sm = 96 * 1024;
    dev.l2_bytes = 6 * 1024 * 1024;
    dev.dram_gbps = 900.0;
    dev.l2_gbps = 2150.0;
    dev.shared_gbps = 13800.0;
    dev.peak_gflops = 14000.0;
    return dev;
  }

  /// Resident thread blocks device-wide.
  int resident_blocks() const { return num_sms * blocks_per_sm; }
};

/// Multi-level roofline execution-time estimate: a kernel is bound by the
/// slowest of the DRAM system, the L2 crossbar, the shared-memory banks,
/// and the ALUs. SpMM/SDDMM are DRAM-bound when reuse is poor and
/// L2-bound when reuse is L2-served; shared-memory staging (ASpT dense
/// tiles) moves traffic onto the fastest level. Overloads: the 2-argument
/// memory/compute form is kept for components that only track DRAM.
double roofline_time_s(const DeviceConfig& dev, double dram_bytes, double flops);
double roofline_time_s(const DeviceConfig& dev, double dram_bytes, double l2_bytes,
                       double shared_bytes, double flops);

}  // namespace rrspmm::gpusim
