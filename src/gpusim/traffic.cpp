#include "gpusim/traffic.hpp"

#include <algorithm>

#include "gpusim/lru_cache.hpp"

namespace rrspmm::gpusim {

double roofline_time_s(const DeviceConfig& dev, double dram_bytes, double flops) {
  const double mem_time = dram_bytes / (dev.dram_gbps * 1e9);
  const double alu_time = flops / (dev.peak_gflops * 1e9);
  return std::max(mem_time, alu_time);
}

double roofline_time_s(const DeviceConfig& dev, double dram_bytes, double l2_bytes,
                       double shared_bytes, double flops) {
  const double l2_time = l2_bytes / (dev.l2_gbps * 1e9);
  const double shared_time = shared_bytes / (dev.shared_gbps * 1e9);
  return std::max({roofline_time_s(dev, dram_bytes, flops), l2_time, shared_time});
}

namespace {

constexpr std::uint64_t kSpaceX = 0;  ///< cache key space for X rows
constexpr std::uint64_t kSpaceY = 1;  ///< cache key space for Y rows (SDDMM reads)

std::uint64_t row_key(std::uint64_t space, index_t row) {
  return (space << 32) | static_cast<std::uint64_t>(static_cast<std::uint32_t>(row));
}

/// Shared L2 model: exact LRU over K-wide dense rows (see lru_cache.hpp
/// for why row granularity is exact here).
class L2Model {
 public:
  L2Model(const DeviceConfig& dev, index_t k, SimResult* res)
      : cache_(std::max<std::size_t>(1, dev.l2_bytes / (static_cast<std::size_t>(k) * 4))),
        row_bytes_(static_cast<double>(k) * 4.0),
        res_(res) {}

  /// A warp reads a K-wide row of a dense operand; on L2 miss the whole
  /// row comes from DRAM.
  void read_row(std::uint64_t space, index_t row) {
    ++res_->x_accesses;
    res_->l2_bytes += row_bytes_;  // hits and misses both traverse the L2
    if (cache_.access(row_key(space, row))) {
      ++res_->x_l2_hits;
    } else {
      res_->dram_bytes += row_bytes_;
    }
  }

 private:
  LruKeyCache cache_;
  double row_bytes_;
  SimResult* res_;
};

/// Interleaves the nonzeros of `s` in GPU execution order: thread blocks
/// of `warps_per_block` rows, `resident_blocks()` co-resident, each
/// resident block advancing every warp by one nonzero per round-robin
/// turn. `visit(row, col)` is called once per nonzero in that order.
/// `order` (gather permutation) selects which row each warp slot owns.
template <typename F>
void interleave_rowwise(const CsrMatrix& s, const std::vector<index_t>* order,
                        const DeviceConfig& dev, F&& visit) {
  const index_t n = s.rows();
  if (n == 0) return;
  const index_t bs = static_cast<index_t>(dev.warps_per_block);
  const index_t num_blocks = (n + bs - 1) / bs;
  const index_t resident = std::min<index_t>(num_blocks, static_cast<index_t>(dev.resident_blocks()));

  struct WarpCursor {
    index_t row;
    offset_t cur;
    offset_t end;
  };
  struct Slot {
    std::vector<WarpCursor> warps;
    bool active = false;
  };

  auto row_at = [&](index_t p) { return order ? (*order)[static_cast<std::size_t>(p)] : p; };

  index_t next_block = 0;
  auto load_block = [&](Slot& slot) {
    if (next_block >= num_blocks) {
      slot.active = false;
      return;
    }
    const index_t first = next_block * bs;
    const index_t last = std::min<index_t>(n, first + bs);
    slot.warps.clear();
    for (index_t p = first; p < last; ++p) {
      const index_t r = row_at(p);
      slot.warps.push_back(WarpCursor{r, s.rowptr()[static_cast<std::size_t>(r)],
                                      s.rowptr()[static_cast<std::size_t>(r) + 1]});
    }
    slot.active = true;
    ++next_block;
  };

  std::vector<Slot> slots(static_cast<std::size_t>(resident));
  for (auto& slot : slots) load_block(slot);

  index_t active_count = 0;
  for (const auto& slot : slots) active_count += slot.active ? 1 : 0;

  while (active_count > 0) {
    for (auto& slot : slots) {
      if (!slot.active) continue;
      bool any_advanced = false;
      for (WarpCursor& w : slot.warps) {
        if (w.cur < w.end) {
          visit(w.row, s.colidx()[static_cast<std::size_t>(w.cur)]);
          ++w.cur;
          any_advanced = true;
        }
      }
      if (!any_advanced) {  // block retired; next one takes the SM slot
        load_block(slot);
        if (!slot.active) --active_count;
      }
    }
  }
}

/// One global-memory request of a panel's dense phase: a K-wide row read
/// in the given key space (X for staged columns, Y for SDDMM row fetches).
struct PanelItem {
  std::uint64_t space;
  index_t row;
};

/// Interleaves dense-tile panels (one thread block per panel): each
/// resident panel issues one work item per turn. Panels with empty work
/// lists launch nothing.
template <typename F>
void interleave_panels(const std::vector<std::vector<PanelItem>>& work, const DeviceConfig& dev,
                       F&& visit) {
  const index_t num_panels = static_cast<index_t>(work.size());
  if (num_panels == 0) return;
  const index_t resident = std::min<index_t>(num_panels, static_cast<index_t>(dev.resident_blocks()));

  struct Slot {
    index_t panel = 0;
    std::size_t next_item = 0;
    bool active = false;
  };
  index_t next_panel = 0;
  auto load = [&](Slot& slot) {
    while (next_panel < num_panels && work[static_cast<std::size_t>(next_panel)].empty()) {
      ++next_panel;
    }
    if (next_panel >= num_panels) {
      slot.active = false;
      return;
    }
    slot.panel = next_panel++;
    slot.next_item = 0;
    slot.active = true;
  };

  std::vector<Slot> slots(static_cast<std::size_t>(resident));
  for (auto& s : slots) load(s);
  index_t active_count = 0;
  for (const auto& s : slots) active_count += s.active ? 1 : 0;

  while (active_count > 0) {
    for (auto& slot : slots) {
      if (!slot.active) continue;
      const auto& items = work[static_cast<std::size_t>(slot.panel)];
      if (slot.next_item < items.size()) {
        visit(items[slot.next_item]);
        ++slot.next_item;
      } else {
        load(slot);
        if (!slot.active) --active_count;
      }
    }
  }
}

/// Work list for SpMM's dense phase: stage each dense column once.
std::vector<std::vector<PanelItem>> spmm_panel_work(const std::vector<aspt::Panel>& panels) {
  std::vector<std::vector<PanelItem>> work(panels.size());
  for (std::size_t i = 0; i < panels.size(); ++i) {
    for (index_t c : panels[i].dense_cols) work[i].push_back({0 /*kSpaceX*/, c});
  }
  return work;
}

/// Work list for SDDMM's dense phase: stage each dense column, then fetch
/// the Y row of every panel row that owns dense nonzeros.
std::vector<std::vector<PanelItem>> sddmm_panel_work(const std::vector<aspt::Panel>& panels) {
  std::vector<std::vector<PanelItem>> work(panels.size());
  for (std::size_t i = 0; i < panels.size(); ++i) {
    const aspt::Panel& p = panels[i];
    if (p.dense_cols.empty()) continue;
    for (index_t c : p.dense_cols) work[i].push_back({0 /*kSpaceX*/, c});
    for (index_t r = 0; r < p.rows(); ++r) {
      if (p.dense_rowptr[static_cast<std::size_t>(r) + 1] >
          p.dense_rowptr[static_cast<std::size_t>(r)]) {
        work[i].push_back({1 /*kSpaceY*/, p.row_begin + r});
      }
    }
  }
  return work;
}

double csr_stream_bytes(const CsrMatrix& s) {
  // colidx (4B) + values (4B) per nonzero, rowptr (8B) per row.
  return static_cast<double>(s.nnz()) * 8.0 + static_cast<double>(s.rows() + 1) * 8.0;
}

}  // namespace

SimResult simulate_spmm_rowwise(const CsrMatrix& s, index_t k, const DeviceConfig& dev,
                                const std::vector<index_t>* row_order) {
  SimResult res;
  res.kernels_launched = 1;
  res.flops = 2.0 * static_cast<double>(s.nnz()) * static_cast<double>(k);
  res.dram_bytes += csr_stream_bytes(s);
  // Every output row is written once.
  res.dram_bytes += static_cast<double>(s.rows()) * static_cast<double>(k) * 4.0;

  L2Model l2(dev, k, &res);
  interleave_rowwise(s, row_order, dev,
                     [&](index_t /*row*/, index_t col) { l2.read_row(kSpaceX, col); });

  res.time_s = dev.launch_overhead_s * res.kernels_launched +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

SimResult simulate_spmm_aspt(const AsptMatrix& a, index_t k, const DeviceConfig& dev,
                             const std::vector<index_t>* sparse_order) {
  SimResult res;
  res.flops = 2.0 * static_cast<double>(a.stats().nnz_total) * static_cast<double>(k);

  L2Model l2(dev, k, &res);

  // Phase 1: dense-tile kernel. Each panel stages its dense columns' X
  // rows once (through L2); every dense nonzero then hits shared memory.
  bool any_dense = false;
  for (const aspt::Panel& p : a.panels()) any_dense |= !p.dense_cols.empty();
  if (any_dense) {
    res.kernels_launched++;
    interleave_panels(spmm_panel_work(a.panels()), dev,
                      [&](const PanelItem& item) { l2.read_row(item.space, item.row); });
    for (const aspt::Panel& p : a.panels()) {
      res.shared_hits += static_cast<std::uint64_t>(p.nnz());
      res.shared_bytes += static_cast<double>(p.nnz()) * static_cast<double>(k) * 4.0;
      // dense_slot (4B) + dense_val (4B) per nonzero; per-panel rowptr and
      // dense-column list streamed once.
      res.dram_bytes += static_cast<double>(p.nnz()) * 8.0 +
                        static_cast<double>(p.rows() + 1) * 8.0 +
                        static_cast<double>(p.dense_cols.size()) * 4.0;
    }
  }

  // Phase 2: row-wise kernel over the sparse remainder, optionally in the
  // round-2 reordered processing order.
  const CsrMatrix& sp = a.sparse_part();
  if (sp.nnz() > 0) {
    res.kernels_launched++;
    res.dram_bytes += csr_stream_bytes(sp);
    interleave_rowwise(sp, sparse_order, dev,
                       [&](index_t /*row*/, index_t col) { l2.read_row(kSpaceX, col); });
  }

  // Y traffic: one write per output row. ASpT keeps a row's accumulator
  // in registers across its dense and sparse segments (the panel's block
  // owns both), so — like the paper's own access counting in §2.3/§3.1 —
  // no partial-sum reload is charged.
  res.dram_bytes += static_cast<double>(a.rows()) * static_cast<double>(k) * 4.0;

  res.time_s = dev.launch_overhead_s * std::max(res.kernels_launched, 1) +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

SimResult simulate_spmv_rowwise(const CsrMatrix& s, const DeviceConfig& dev,
                                const std::vector<index_t>* row_order) {
  SimResult res;
  res.kernels_launched = 1;
  res.flops = 2.0 * static_cast<double>(s.nnz());
  res.dram_bytes += csr_stream_bytes(s);
  res.dram_bytes += static_cast<double>(s.rows()) * 4.0;  // y written once

  // L2 at cache-line granularity over the x vector: each nonzero touches
  // one 4-byte element; a miss fetches the whole line_bytes line. Nearby
  // columns share lines — the spatial locality vertex reordering creates.
  const auto elems_per_line = static_cast<index_t>(dev.line_bytes / 4);
  const double line_bytes = static_cast<double>(dev.line_bytes);
  LruKeyCache cache(std::max<std::size_t>(1, dev.l2_bytes / static_cast<std::size_t>(dev.line_bytes)));
  interleave_rowwise(s, row_order, dev, [&](index_t /*row*/, index_t col) {
    ++res.x_accesses;
    res.l2_bytes += 4.0;  // one element traverses the L2 per access
    if (cache.access(static_cast<std::uint64_t>(col / elems_per_line))) {
      ++res.x_l2_hits;
    } else {
      res.dram_bytes += line_bytes;
    }
  });

  res.time_s = dev.launch_overhead_s * res.kernels_launched +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

SimResult simulate_sddmm_rowwise(const CsrMatrix& s, index_t k, const DeviceConfig& dev,
                                 const std::vector<index_t>* row_order) {
  SimResult res;
  res.kernels_launched = 1;
  res.flops = 2.0 * static_cast<double>(s.nnz()) * static_cast<double>(k);
  // S structure + values in, O values out.
  res.dram_bytes += csr_stream_bytes(s) + static_cast<double>(s.nnz()) * 4.0;

  L2Model l2(dev, k, &res);
  // The warp keeps its own Y row resident (registers/shared) across the
  // row's nonzeros; it is fetched once per row, through L2.
  std::vector<bool> y_fetched(static_cast<std::size_t>(s.rows()), false);
  interleave_rowwise(s, row_order, dev, [&](index_t row, index_t col) {
    if (!y_fetched[static_cast<std::size_t>(row)]) {
      l2.read_row(kSpaceY, row);
      y_fetched[static_cast<std::size_t>(row)] = true;
    }
    l2.read_row(kSpaceX, col);
  });

  res.time_s = dev.launch_overhead_s * res.kernels_launched +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

SimResult simulate_spgemm_rowwise(const CsrMatrix& a, const CsrMatrix& b, const DeviceConfig& dev,
                                  const std::vector<index_t>* row_order) {
  SimResult res;
  res.kernels_launched = 2;  // symbolic + numeric

  // Exact fill-in and useful work, row by row (the same quantities the
  // spgemm kernels' symbolic phase computes).
  double products = 0.0;
  double out_nnz = 0.0;
  {
    std::vector<index_t> scratch;
    for (index_t i = 0; i < a.rows(); ++i) {
      scratch.clear();
      for (const index_t j : a.row_cols(i)) {
        const auto bc = b.row_cols(j);
        products += static_cast<double>(bc.size());
        scratch.insert(scratch.end(), bc.begin(), bc.end());
      }
      std::sort(scratch.begin(), scratch.end());
      out_nnz += static_cast<double>(std::unique(scratch.begin(), scratch.end()) -
                                     scratch.begin());
    }
  }
  res.flops = 2.0 * products;

  // Streamed traffic. A's structure twice (both passes), values once;
  // C written once at its exact size — the sparse-output write pattern:
  // rowptr (8B/row) + colidx+values (8B/nnz), nothing dense-shaped.
  res.dram_bytes += static_cast<double>(a.nnz()) * 4.0 +
                    static_cast<double>(a.rows() + 1) * 8.0;  // symbolic: A structure
  res.dram_bytes += csr_stream_bytes(a);                      // numeric: A structure + values
  res.dram_bytes += static_cast<double>(a.rows() + 1) * 8.0 + out_nnz * 8.0;  // C out

  // B rows through the shared L2, at whole-row granularity (capacity in
  // average-sized rows). The symbolic pass touches structure only
  // (4B/nnz + 8B rowptr entry), the numeric pass the full row (8B/nnz);
  // a cached row serves both, so symbolic warms numeric.
  const double avg_row_bytes =
      b.rows() > 0
          ? static_cast<double>(b.nnz()) * 8.0 / static_cast<double>(b.rows()) + 8.0
          : 8.0;
  LruKeyCache cache(std::max<std::size_t>(
      1, dev.l2_bytes / std::max<std::size_t>(1, static_cast<std::size_t>(avg_row_bytes))));
  const auto read_b_row = [&](index_t j, double bytes) {
    ++res.x_accesses;
    res.l2_bytes += bytes;
    if (cache.access(row_key(kSpaceX, j))) {
      ++res.x_l2_hits;
    } else {
      res.dram_bytes += bytes;
    }
  };
  interleave_rowwise(a, row_order, dev, [&](index_t /*row*/, index_t col) {
    read_b_row(col, static_cast<double>(b.row_nnz(col)) * 4.0 + 8.0);
  });
  interleave_rowwise(a, row_order, dev, [&](index_t /*row*/, index_t col) {
    read_b_row(col, static_cast<double>(b.row_nnz(col)) * 8.0 + 8.0);
  });

  res.time_s = dev.launch_overhead_s * res.kernels_launched +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

SimResult simulate_sddmm_aspt(const AsptMatrix& a, index_t k, const DeviceConfig& dev,
                              const std::vector<index_t>* sparse_order) {
  SimResult res;
  res.flops = 2.0 * static_cast<double>(a.stats().nnz_total) * static_cast<double>(k);

  L2Model l2(dev, k, &res);

  bool any_dense = false;
  for (const aspt::Panel& p : a.panels()) any_dense |= !p.dense_cols.empty();
  if (any_dense) {
    res.kernels_launched++;
    // Each panel stages its dense columns, then fetches the Y row of each
    // panel row owning dense nonzeros — all interleaved across resident
    // panels, as the blocks would issue them.
    interleave_panels(sddmm_panel_work(a.panels()), dev,
                      [&](const PanelItem& item) { l2.read_row(item.space, item.row); });
    for (const aspt::Panel& p : a.panels()) {
      res.shared_hits += static_cast<std::uint64_t>(p.nnz());
      res.shared_bytes += static_cast<double>(p.nnz()) * static_cast<double>(k) * 4.0;
      // Structure + S values in + O out for the dense nonzeros, plus
      // panel metadata.
      res.dram_bytes += static_cast<double>(p.nnz()) * 12.0 +
                        static_cast<double>(p.rows() + 1) * 8.0 +
                        static_cast<double>(p.dense_cols.size()) * 4.0;
    }
  }

  const CsrMatrix& sp = a.sparse_part();
  if (sp.nnz() > 0) {
    res.kernels_launched++;
    res.dram_bytes += csr_stream_bytes(sp) + static_cast<double>(sp.nnz()) * 4.0;
    std::vector<bool> y_fetched(static_cast<std::size_t>(sp.rows()), false);
    interleave_rowwise(sp, sparse_order, dev, [&](index_t row, index_t col) {
      if (!y_fetched[static_cast<std::size_t>(row)]) {
        l2.read_row(kSpaceY, row);
        y_fetched[static_cast<std::size_t>(row)] = true;
      }
      l2.read_row(kSpaceX, col);
    });
  }

  res.time_s = dev.launch_overhead_s * std::max(res.kernels_launched, 1) +
               roofline_time_s(dev, res.dram_bytes, res.l2_bytes, res.shared_bytes, res.flops);
  return res;
}

}  // namespace rrspmm::gpusim
