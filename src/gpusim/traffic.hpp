// Global-memory traffic simulation of the four GPU kernels the paper
// compares:
//
//   * row-wise SpMM / SDDMM  — one warp per sparse row (Alg 1 / Alg 2);
//     the cuSPARSE-class baseline.
//   * ASpT SpMM / SDDMM      — dense-tile phase staging dense-column X
//     rows in shared memory, then a row-wise pass over the sparse
//     remainder (optionally in a reordered row-processing order — the
//     paper's round-2 reordering).
//
// Execution model: thread blocks of `warps_per_block` rows are launched
// in row order (or in `row_order`, when given); `resident_blocks()` of
// them are co-resident and their access streams interleave round-robin at
// one-nonzero-per-warp granularity through a shared exact-LRU L2. This is
// what makes "similar rows placed in nearby blocks" produce L2 hits —
// the effect row-reordering exploits.
//
// Byte accounting per kernel (all fp32, index_t=4B, offset_t=8B):
//   streamed once (always DRAM): rowptr, colidx, values of the traversed
//   sparse structure; Y output writes; SDDMM O writes and S reads.
//   modelled through L2: X-row reads (K*4 bytes per miss);
//   in ASpT's dense phase each panel's dense-column X rows are read once
//   (through L2) into shared memory, after which every dense nonzero is a
//   shared-memory hit with zero global traffic. Y accumulators live in
//   registers across a row's dense and sparse segments, so Y is written
//   exactly once per row in every strategy — matching the paper's own
//   access counting (§2.3/§3.1), which tracks X reads only.
#pragma once

#include <cstdint>
#include <vector>

#include "aspt/aspt.hpp"
#include "gpusim/device.hpp"
#include "sparse/csr.hpp"

namespace rrspmm::gpusim {

using aspt::AsptMatrix;
using sparse::CsrMatrix;

struct SimResult {
  double dram_bytes = 0.0;       ///< total bytes moved to/from DRAM
  double l2_bytes = 0.0;         ///< bytes traversing the L2 (hits + misses)
  double shared_bytes = 0.0;     ///< bytes served from shared memory
  double flops = 0.0;            ///< useful floating-point work
  double time_s = 0.0;           ///< roofline estimate incl. launch overhead
  std::uint64_t x_accesses = 0;  ///< X-row read requests issued
  std::uint64_t x_l2_hits = 0;   ///< served by the simulated L2
  std::uint64_t shared_hits = 0; ///< served by shared memory (dense tiles)
  int kernels_launched = 0;

  double gflops() const { return time_s > 0.0 ? flops / time_s * 1e-9 : 0.0; }
};

/// Row-wise SpMM (Y = S * X), K dense columns. `row_order`, if non-null,
/// is the row *processing* order (gather permutation); output placement
/// is unaffected — this models processing a reordered matrix.
SimResult simulate_spmm_rowwise(const CsrMatrix& s, index_t k, const DeviceConfig& dev,
                                const std::vector<index_t>* row_order = nullptr);

/// ASpT SpMM over a tiled matrix. `sparse_order`, if non-null, is the
/// processing order of the sparse-remainder rows (the paper's round-2
/// reordering).
SimResult simulate_spmm_aspt(const AsptMatrix& a, index_t k, const DeviceConfig& dev,
                             const std::vector<index_t>* sparse_order = nullptr);

/// Row-wise SpMV (y = S * x): the dense operand is a single vector, so
/// the L2 is modelled at cache-*line* granularity (line_bytes / 4 vector
/// elements per line) rather than K-wide rows — this is where *spatial*
/// locality among nearby columns exists, and why vertex reordering helps
/// SpMV but not SpMM (paper §1/§6; reproduced by ablation_vertex_reorder).
SimResult simulate_spmv_rowwise(const CsrMatrix& s, const DeviceConfig& dev,
                                const std::vector<index_t>* row_order = nullptr);

/// Row-wise SDDMM (O = (Y x X^T) .* S elementwise on S's pattern).
SimResult simulate_sddmm_rowwise(const CsrMatrix& s, index_t k, const DeviceConfig& dev,
                                 const std::vector<index_t>* row_order = nullptr);

/// Row-wise Gustavson SpGEMM (C = A * B, all CSR) — the sparse-output
/// workload. Two launches are modelled (symbolic row-sizing, then exact
/// numeric fill): A's structure streams in both, A's values in the
/// numeric pass only, and C — rowptr plus exactly-sized colidx/values —
/// is written once, the sparse-output counterpart of the dense Y-write
/// accounting above. The reuse that reordering exploits is on B: every
/// nonzero (i,j) of A reads B's row j through the shared L2 (modelled at
/// whole-row granularity, capacity in average-sized B rows; a row
/// structurally touched in the symbolic pass warms the cache for the
/// numeric one). `row_order` is A's row *processing* order — rows with
/// similar column sets placed in nearby blocks share their B-row working
/// set, exactly the SpMM effect transferred to a sparse right operand.
SimResult simulate_spgemm_rowwise(const CsrMatrix& a, const CsrMatrix& b, const DeviceConfig& dev,
                                  const std::vector<index_t>* row_order = nullptr);

/// ASpT SDDMM over a tiled matrix.
SimResult simulate_sddmm_aspt(const AsptMatrix& a, index_t k, const DeviceConfig& dev,
                              const std::vector<index_t>* sparse_order = nullptr);

}  // namespace rrspmm::gpusim
