// Exact-LRU cache over opaque keys, used to model the GPU L2.
//
// Granularity note: the simulated kernels always read a *whole K-wide
// row* of a dense operand per sparse nonzero (K*4 bytes, 16 lines at
// K=512), so all lines of a row are hot or cold together. Tracking whole
// rows as single objects of row_bytes each is therefore exact w.r.t. a
// line-granular LRU for these kernels, and ~16x cheaper to simulate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

#include "sparse/types.hpp"

namespace rrspmm::gpusim {

class LruKeyCache {
 public:
  /// Cache holding at most `capacity` keys; 0 disables caching (every
  /// access misses — used to model a cache-bypassing baseline).
  explicit LruKeyCache(std::size_t capacity) : capacity_(capacity) {}

  /// Touches `key`; returns true on hit. On miss the key is inserted,
  /// evicting the least-recently-used key if full.
  bool access(std::uint64_t key);

  bool contains(std::uint64_t key) const { return map_.contains(key); }
  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

  void clear();

 private:
  std::size_t capacity_;
  std::list<std::uint64_t> order_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace rrspmm::gpusim
